/**
 * @file
 * Main-memory model: bandwidth accounting plus load-dependent latency.
 *
 * The model is deliberately coarse — the experiments in the paper read
 * memory bandwidth as a *symptom* (DMA leak, bloat) and latency as a
 * *penalty*. We track read/write byte counters (snapshot-compatible
 * with the PCM facade) and derive an effective access latency that
 * grows with recent channel utilisation, saturating like a real DDR4
 * subsystem under queueing.
 */

#ifndef A4_MEM_DRAM_HH
#define A4_MEM_DRAM_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace a4
{

/** Configuration for the DRAM model. */
struct DramConfig
{
    /** Unloaded read latency (ns). */
    double base_latency_ns = 90.0;
    /** Peak sustainable bandwidth in bytes per second. */
    double peak_bw_bps = 128.0 * 1e9;
    /** Utilisation window for the latency model (ns). */
    Tick window_ns = 100 * kUsec;
};

/**
 * DDR4 memory subsystem stand-in.
 *
 * All cache fills/writebacks and non-allocating DMA traffic call into
 * readLine()/writeLine(); callers receive the current effective
 * latency, which they fold into their own service-time accounting.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg = DramConfig());

    /** Account one cache-line read; returns effective latency (ns). */
    double readLine(Tick now);

    /** Account one cache-line write; returns effective latency (ns). */
    double writeLine(Tick now);

    /** Account a bulk transfer of @p bytes (DMA bypassing the LLC). */
    void readBulk(Tick now, std::uint64_t bytes);
    void writeBulk(Tick now, std::uint64_t bytes);

    /** Effective read latency at the current utilisation (ns). */
    double effectiveLatency(Tick now) const;

    /** Utilisation of the last window, in [0, ~1.2]. */
    double utilization(Tick now) const;

    /** @name Raw byte counters (monotonic; PCM snapshots them). @{ */
    const SnapshotCounter &readBytes() const { return rd_bytes; }
    const SnapshotCounter &writeBytes() const { return wr_bytes; }
    /** @} */

    const DramConfig &config() const { return cfg; }

    /** @name Snapshot hooks: counters + the utilisation window. @{ */
    void
    saveState(Serializer &s) const
    {
        s.begin("dram");
        rd_bytes.saveState(s);
        wr_bytes.saveState(s);
        s.u64(window_start);
        s.u64(cur_window_bytes);
        s.u64(prev_window_bytes);
        s.end("dram");
    }

    void
    restoreState(Deserializer &d)
    {
        d.begin("dram");
        rd_bytes.restoreState(d);
        wr_bytes.restoreState(d);
        window_start = d.u64();
        cur_window_bytes = d.u64();
        prev_window_bytes = d.u64();
        d.end("dram");
    }
    /** @} */

  private:
    void roll(Tick now) const;

    DramConfig cfg;
    SnapshotCounter rd_bytes;
    SnapshotCounter wr_bytes;

    // Two-bucket sliding window of recent traffic for utilisation.
    mutable Tick window_start = 0;
    mutable std::uint64_t cur_window_bytes = 0;
    mutable std::uint64_t prev_window_bytes = 0;
};

} // namespace a4

#endif // A4_MEM_DRAM_HH
