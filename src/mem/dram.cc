#include "mem/dram.hh"

#include <algorithm>

#include "sim/log.hh"

namespace a4
{

Dram::Dram(const DramConfig &config) : cfg(config)
{
    if (cfg.peak_bw_bps <= 0.0)
        fatal("Dram: peak bandwidth must be positive");
    if (cfg.window_ns == 0)
        fatal("Dram: utilisation window must be non-zero");
}

void
Dram::roll(Tick now) const
{
    // Advance the two-bucket window so stale traffic ages out.
    while (now >= window_start + cfg.window_ns) {
        window_start += cfg.window_ns;
        prev_window_bytes = cur_window_bytes;
        cur_window_bytes = 0;
        // Fast-forward across long idle gaps.
        if (now >= window_start + 2 * cfg.window_ns) {
            window_start = now - (now % cfg.window_ns);
            prev_window_bytes = 0;
        }
    }
}

double
Dram::utilization(Tick now) const
{
    roll(now);
    // Blend the completed bucket with the in-progress one.
    double elapsed = static_cast<double>(now - window_start);
    double span = static_cast<double>(cfg.window_ns);
    double frac = std::clamp(elapsed / span, 0.0, 1.0);
    double bytes = static_cast<double>(prev_window_bytes) * (1.0 - frac) +
                   static_cast<double>(cur_window_bytes);
    double window_capacity = cfg.peak_bw_bps * (span / 1e9);
    return bytes / window_capacity;
}

double
Dram::effectiveLatency(Tick now) const
{
    // Classic closed-form queueing knee: latency grows hyperbolically
    // as utilisation approaches 1, capped at 8x unloaded latency.
    double u = std::min(utilization(now), 0.97);
    double factor = 1.0 / (1.0 - 0.75 * u);
    return cfg.base_latency_ns * std::min(factor, 8.0);
}

double
Dram::readLine(Tick now)
{
    roll(now);
    rd_bytes.add(kLineBytes);
    cur_window_bytes += kLineBytes;
    return effectiveLatency(now);
}

double
Dram::writeLine(Tick now)
{
    roll(now);
    wr_bytes.add(kLineBytes);
    cur_window_bytes += kLineBytes;
    // Writes are posted; they cost bandwidth, not core-visible latency.
    return 0.0;
}

void
Dram::readBulk(Tick now, std::uint64_t bytes)
{
    roll(now);
    rd_bytes.add(bytes);
    cur_window_bytes += bytes;
}

void
Dram::writeBulk(Tick now, std::uint64_t bytes)
{
    roll(now);
    wr_bytes.add(bytes);
    cur_window_bytes += bytes;
}

} // namespace a4
