#include "core/baseline.hh"

#include <numeric>

#include "sim/log.hh"

namespace a4
{

void
IsolateManager::start()
{
    cat.resetAll();
    const unsigned n_ways = cat.numWays();

    // CLOS 0 stays the full-mask default for unmanaged cores; managed
    // workloads get CLOS 1..N.
    unsigned next_clos = 1;

    std::vector<bool> way_used(n_ways, false);

    // Pinned workloads first.
    for (std::size_t i = 0; i < pins.size(); ++i) {
        if (next_clos >= cat.numClos())
            fatal("IsolateManager: out of CLOS");
        if (pins[i].hi >= n_ways)
            fatal("IsolateManager: pinned range beyond way count");
        cat.setClosMask(next_clos,
                        CatController::makeMask(pins[i].lo, pins[i].hi));
        for (CoreId c : wls[i].cores)
            cat.assignCore(c, next_clos);
        for (unsigned w = pins[i].lo; w <= pins[i].hi; ++w)
            way_used[w] = true;
        ++next_clos;
    }

    // Remaining workloads split the remaining ways proportionally.
    std::vector<const WorkloadDesc *> rest;
    for (std::size_t i = pins.size(); i < wls.size(); ++i)
        rest.push_back(&wls[i]);
    if (rest.empty())
        return;

    unsigned free_lo = 0;
    while (free_lo < n_ways && way_used[free_lo])
        ++free_lo;
    unsigned free_hi = n_ways;
    while (free_hi > free_lo && way_used[free_hi - 1])
        --free_hi;
    unsigned free_ways = free_hi - free_lo;
    if (free_ways == 0)
        fatal("IsolateManager: no ways left for auto-partitioning");

    // More workloads than ways: the static model cannot give every
    // workload a private way (the very limitation §5.2 calls out), so
    // single-way partitions are shared round-robin.
    if (free_ways < rest.size()) {
        for (std::size_t i = 0; i < rest.size(); ++i) {
            unsigned way = free_lo + static_cast<unsigned>(i) %
                                         free_ways;
            unsigned clos = next_clos + static_cast<unsigned>(i) %
                                            free_ways;
            if (clos >= cat.numClos())
                fatal("IsolateManager: out of CLOS");
            cat.setClosMask(clos, CatController::makeMask(way, way));
            for (CoreId c : rest[i]->cores)
                cat.assignCore(c, clos);
        }
        return;
    }

    unsigned total_cores = 0;
    for (const auto *w : rest)
        total_cores += static_cast<unsigned>(w->cores.size());

    // Largest-remainder apportionment with a 1-way floor.
    std::vector<unsigned> grant(rest.size(), 1);
    unsigned granted = static_cast<unsigned>(rest.size());
    for (std::size_t i = 0; i < rest.size() && granted < free_ways;
         ++i) {
        unsigned extra = static_cast<unsigned>(
            double(free_ways) * rest[i]->cores.size() / total_cores);
        extra = extra > 1 ? extra - 1 : 0;
        extra = std::min(extra, free_ways - granted);
        grant[i] += extra;
        granted += extra;
    }
    // Hand out any remainder left by rounding.
    for (std::size_t i = 0; granted < free_ways; ++i) {
        ++grant[i % rest.size()];
        ++granted;
    }

    unsigned lo = free_lo;
    for (std::size_t i = 0; i < rest.size(); ++i) {
        if (next_clos >= cat.numClos())
            fatal("IsolateManager: out of CLOS");
        unsigned hi = lo + grant[i] - 1;
        cat.setClosMask(next_clos, CatController::makeMask(lo, hi));
        for (CoreId c : rest[i]->cores)
            cat.assignCore(c, next_clos);
        lo = hi + 1;
        ++next_clos;
    }
}

} // namespace a4
