/**
 * @file
 * A4: the runtime microarchitecture-aware LLC management framework
 * (§5 of the paper) — the primary contribution of this repository.
 *
 * A4 orchestrates CAT masks and per-port DDIO state from performance
 * counters only, at a fixed monitoring interval, following the Fig. 9
 * execution flow:
 *
 *  - (F1) Priority-based allocation (§5.2): an HP Zone that spans all
 *    usable ways and an LP Zone that starts at the two rightmost ways
 *    and expands leftward every `expand_period` intervals until some
 *    HPW's LLC hit rate drops more than T1 below its value at the
 *    initial partitions.
 *  - Safeguarding I/O buffers (§5.3): with I/O HPWs present, the DCA
 *    ways are reserved for them (non-I/O HPWs get way[2:10]) and the
 *    LP Zone is pushed off the inclusive ways (initial way[7:8]).
 *  - (F2) Selective DDIO disable (§5.4): a storage workload whose
 *    DCA miss rate exceeds T2, whose LLC miss rate exceeds T4, and
 *    whose share of PCIe write throughput exceeds T3 is a DMA-leak
 *    source: its port's DDIO is disabled and it is demoted to LPW.
 *  - Pseudo LLC bypassing (§5.5): a non-I/O workload whose MLC *and*
 *    LLC miss rates exceed T5 is an antagonist; antagonists are walked
 *    down to the trash ways (toward way 8) while stability holds.
 *  - Phase handling (§5.6): per-interval fluctuation checks against
 *    the initial-partition baseline; periodic reverts to the initial
 *    partitions every `stable_intervals` to estimate the attainable
 *    hit rate; antagonist restoration and DDIO re-enable.
 *
 * Feature gates reproduce the paper's A4-a/b/c/d ablation (Fig. 13).
 */

#ifndef A4_CORE_A4_HH
#define A4_CORE_A4_HH

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "iodev/ddio.hh"
#include "iodev/pcie.hh"
#include "pcm/monitor.hh"
#include "rdt/cat.hh"
#include "sim/engine.hh"

namespace a4
{

/** QoS priority supplied by the user / cluster manager. */
enum class QosPriority { High, Low };

/** Workload registration record (what cluster software supplies). */
struct WorkloadDesc
{
    WorkloadId id = kNoWorkload;
    std::string name;
    std::vector<CoreId> cores;
    QosPriority priority = QosPriority::Low;
    bool is_io = false;
    PortId port = 0xFFFF;
    DeviceClass io_class = DeviceClass::Other;
};

/** A4 thresholds (Table 1 defaults), timing, and feature gates. */
struct A4Params
{
    double hpw_llc_hit_thr = 0.20;    ///< T1
    double dmalk_dca_ms_thr = 0.40;   ///< T2
    double dmalk_io_tp_thr = 0.35;    ///< T3
    double dmalk_llc_ms_thr = 0.40;   ///< T4
    double ant_cache_miss_thr = 0.90; ///< T5

    Tick monitor_interval = kSec;   ///< counter sampling period
    unsigned expand_period = 2;     ///< intervals between LP expansions
    unsigned stable_intervals = 10; ///< stable period before a revert
    unsigned revert_intervals = 1;  ///< length of the revert probe
    double stability_fluct = 0.10;  ///< trash-shrink stability bound
    double restore_fluct = 0.30;    ///< antagonist-restoration trigger
    bool enable_revert = true;      ///< false = the Fig. 15c oracle

    /** @name Ablation gates (Fig. 13 A4-a..d). @{ */
    bool safeguard_io = true;   ///< §5.3 (off = A4-a)
    bool selective_ddio = true; ///< §5.4 (off = A4-a/b)
    bool pseudo_bypass = true;  ///< §5.5 (off = A4-a/b/c)
    /** @} */

    /**
     * Fleet mode: give each LPW its own CLOS id so per-tenant
     * occupancy is observable, falling back to IOCA-style grouping
     * (groupTenants()) when the LPW count exceeds the CLOS the
     * hardware has left over. Off (the default) keeps the paper's
     * single shared LPW CLOS.
     */
    bool per_tenant_clos = false;

    /** Minimum per-interval events before a detector may fire. */
    std::uint64_t min_dma_lines = 1000;
    std::uint64_t min_accesses = 1000;
};

/** Preset for the paper's A4-a..d variants ('a' ... 'd'). */
A4Params a4Variant(char variant, const A4Params &base = A4Params());

/** The A4 LLC-management daemon. */
class A4Manager
{
  public:
    /** Execution-flow phase (Fig. 9). */
    enum class Phase { Init, Baseline, Expanding, Stable, Reverting };

    A4Manager(Engine &eng, CacheSystem &cache, CatController &cat,
              DdioController &ddio, Dram &dram, PcieTopology &pcie,
              const A4Params &params = A4Params());

    /** Register a launched workload (triggers reallocation). */
    void addWorkload(const WorkloadDesc &desc);

    /** Deregister a terminated workload (triggers reallocation). */
    void removeWorkload(WorkloadId id);

    /** Start the periodic daemon on the engine. */
    void start();

    /** Stop the daemon (allocations stay as they are). */
    void
    stop()
    {
        running = false;
        // Drop the queued firing so a stop()/start() cycle within one
        // interval cannot leave two periodic chains interleaved.
        periodic_ev.cancel();
    }

    /**
     * One monitoring step. Normally driven by the engine; exposed so
     * tests can step the state machine deterministically.
     */
    void tick();

    /** @name Introspection. @{ */
    Phase phase() const { return phase_; }
    unsigned ticks() const { return tick_count; }
    WayMask lpMask() const;
    WayMask hpNonIoMask() const;
    WayMask trashMask() const;
    unsigned lpLow() const { return lp_lo; }
    unsigned lpHigh() const { return lp_hi; }
    bool isAntagonist(WorkloadId id) const;
    bool isDemoted(WorkloadId id) const;
    bool ddioDisabled(PortId port) const;
    const A4Params &params() const { return prm; }
    /** Distinct CLOS the current tenant mix would want: the five
     *  fixed classes plus one per LPW under per_tenant_clos. */
    unsigned closDemand() const;
    /** CLOS id workload @p id currently occupies for the LP Zone
     *  (kClosLpw when ungrouped / not an LPW / unknown). */
    unsigned lpClosOf(WorkloadId id) const;
    /** Distinct CLOS ids in use by LPWs (0 when none). */
    unsigned lpGroupCount() const;
    /** @} */

    /** @name CLOS layout used by the daemon. @{ */
    static constexpr unsigned kClosIoHpw = 1;
    static constexpr unsigned kClosNonIoHpw = 2;
    static constexpr unsigned kClosLpw = 3;
    static constexpr unsigned kClosTrash = 4;
    /** @} */

    /**
     * @name Snapshot hooks.
     * Registration (the WorkloadDescs) is construction state: the
     * restore path must addWorkload() the same descriptors in the
     * same order before restoring, which then reinstates the full
     * Fig. 9 state machine — phase, zone bounds, detector history,
     * the PCM monitor's previous-snapshot registers, and the queued
     * periodic firing.
     * @{
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);
    /** @} */

  private:
    struct WlState
    {
        WorkloadDesc desc;
        QosPriority effective = QosPriority::Low;
        bool antagonist = false;
        bool ddio_off = false;
        double baseline_hit = -1.0; ///< at the initial partitions
        double stable_hit = -1.0;   ///< latest hit rate in Stable
        double miss_at_detect = 0.0;
        double ingress_at_detect = 0.0;
        /** LP-Zone CLOS under per_tenant_clos (0 = shared kClosLpw).
         *  Assigned by regroupLpTenants() each reallocation. */
        std::uint32_t lp_clos = 0;
        WorkloadSample last;
    };

    void periodic();
    void sampleAll();
    bool anyIoHpw() const;
    unsigned closFor(const WlState &w) const;
    bool isLpw(const WlState &w) const;
    void computeInitialLayout();
    void regroupLpTenants();
    void applyAllocation();
    void applyRevertAllocation();
    void recordBaselines();
    bool hpwDegradedVsBaseline() const;
    void runDetectors();
    void runTrashShrink();
    void runRestorations();
    void enterInit();

    Engine &eng;
    CacheSystem &cache;
    CatController &cat;
    DdioController &ddio;
    PcieTopology &pcie;
    PcmMonitor pcm;
    A4Params prm;

    std::vector<WlState> wls;
    SystemSample last_sys;

    Phase phase_ = Phase::Init;
    bool running = false;
    bool layout_dirty = true;
    unsigned tick_count = 0;
    Engine::Recurring periodic_ev;

    // LP Zone bounds (way indices, inclusive).
    unsigned lp_lo = 9, lp_hi = 10;
    unsigned lp_init_lo = 9, lp_init_hi = 10;
    unsigned lp_min_lo = 0;
    unsigned saved_lp_lo = 9; ///< restored after a revert probe

    // Trash zone [trash_lo : lp_hi].
    unsigned trash_lo = 8;
    bool trash_frozen = false;
    double membw_before_shrink = -1.0;
    double missrate_before_shrink = -1.0;
    double iotp_before_shrink = -1.0;
    bool shrink_pending_check = false;

    unsigned intervals_since_expand = 0;
    unsigned stable_count = 0;
    unsigned revert_count = 0;
};

} // namespace a4

#endif // A4_CORE_A4_HH
