/**
 * @file
 * Baseline LLC-management schemes the paper compares against (§6):
 *
 *  - Default: all workloads share the whole LLC; no CAT programming;
 *    DDIO on for every device.
 *  - Isolate: static workload-wise partitioning — each workload gets
 *    a contiguous run of ways proportional to its core count (or an
 *    explicit way range, as the microbenchmark experiments pin them).
 */

#ifndef A4_CORE_BASELINE_HH
#define A4_CORE_BASELINE_HH

#include <vector>

#include "core/a4.hh"
#include "rdt/cat.hh"

namespace a4
{

/** Default model: full sharing, no explicit CAT allocation. */
class DefaultManager
{
  public:
    explicit DefaultManager(CatController &cat) : cat(cat) {}

    void addWorkload(const WorkloadDesc &) {}

    /** Programs the full mask everywhere (idempotent). */
    void
    start()
    {
        cat.resetAll();
    }

  private:
    CatController &cat;
};

/** Isolate model: static per-workload contiguous partitions. */
class IsolateManager
{
  public:
    explicit IsolateManager(CatController &cat) : cat(cat) {}

    /** Register for automatic proportional partitioning. */
    void
    addWorkload(const WorkloadDesc &desc)
    {
        wls.push_back(desc);
    }

    /**
     * Pin a workload to an explicit way range (the paper's
     * microbenchmark setups, e.g. DPDK at way[2:3]).
     */
    void
    pin(const WorkloadDesc &desc, unsigned lo_way, unsigned hi_way)
    {
        wls.push_back(desc);
        pins.push_back({lo_way, hi_way});
    }

    /**
     * Program the partitions: pinned ranges verbatim; remaining
     * workloads split the remaining ways proportionally to their
     * core counts (at least one way each).
     */
    void start();

  private:
    struct Pin
    {
        unsigned lo, hi;
    };

    CatController &cat;
    std::vector<WorkloadDesc> wls;
    std::vector<Pin> pins; ///< parallel to the pinned prefix of wls
};

} // namespace a4

#endif // A4_CORE_BASELINE_HH
