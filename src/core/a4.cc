#include "core/a4.hh"

#include <algorithm>

#include "sim/log.hh"

namespace a4
{

A4Params
a4Variant(char variant, const A4Params &base)
{
    A4Params p = base;
    switch (variant) {
      case 'a':
        p.safeguard_io = false;
        p.selective_ddio = false;
        p.pseudo_bypass = false;
        break;
      case 'b':
        p.safeguard_io = true;
        p.selective_ddio = false;
        p.pseudo_bypass = false;
        break;
      case 'c':
        p.safeguard_io = true;
        p.selective_ddio = true;
        p.pseudo_bypass = false;
        break;
      case 'd':
        p.safeguard_io = true;
        p.selective_ddio = true;
        p.pseudo_bypass = true;
        break;
      default:
        fatal(sformat("a4Variant: unknown variant '%c'", variant));
    }
    return p;
}

A4Manager::A4Manager(Engine &eng_, CacheSystem &cache_,
                     CatController &cat_, DdioController &ddio_,
                     Dram &dram_, PcieTopology &pcie_,
                     const A4Params &params)
    : eng(eng_), cache(cache_), cat(cat_), ddio(ddio_), pcie(pcie_),
      pcm(eng_, cache_, dram_, pcie_), prm(params)
{
    if (cat.numClos() <= kClosTrash)
        fatal("A4Manager: CAT exposes too few CLOS");
}

// --- registration --------------------------------------------------------

void
A4Manager::addWorkload(const WorkloadDesc &desc)
{
    if (desc.id == kNoWorkload)
        fatal("A4Manager: workload id 0 is reserved");
    for (const auto &w : wls) {
        if (w.desc.id == desc.id)
            fatal(sformat("A4Manager: workload %u already registered",
                          desc.id));
    }
    WlState st;
    st.desc = desc;
    st.effective = desc.priority;
    wls.push_back(std::move(st));
    layout_dirty = true;
}

void
A4Manager::removeWorkload(WorkloadId id)
{
    auto it = std::find_if(wls.begin(), wls.end(), [&](const WlState &w) {
        return w.desc.id == id;
    });
    if (it == wls.end())
        fatal(sformat("A4Manager: workload %u not registered", id));
    if (it->ddio_off)
        ddio.enableDcaForPort(it->desc.port);
    wls.erase(it);
    layout_dirty = true;
}

// --- daemon --------------------------------------------------------------

void
A4Manager::start()
{
    if (running)
        return;
    running = true;
    if (!periodic_ev.initialized())
        periodic_ev.init(eng, [this] { periodic(); });
    periodic_ev.arm(prm.monitor_interval);
}

void
A4Manager::periodic()
{
    if (!running)
        return;
    tick();
    periodic_ev.arm(prm.monitor_interval);
}

void
A4Manager::sampleAll()
{
    for (auto &w : wls)
        w.last = pcm.sampleWorkload(w.desc.id);
    last_sys = pcm.sampleSystem();
}

bool
A4Manager::anyIoHpw() const
{
    for (const auto &w : wls) {
        if (w.desc.is_io && w.effective == QosPriority::High)
            return true;
    }
    return false;
}

// --- layout --------------------------------------------------------------

void
A4Manager::computeInitialLayout()
{
    const CacheGeometry &g = cache.geometry();
    const bool io = anyIoHpw() && prm.safeguard_io;
    lp_init_hi = io ? g.firstInclusiveWay() - 1 : g.llc_ways - 1;
    lp_init_lo = lp_init_hi - 1;
    lp_min_lo = io ? g.dca_ways : 0;
}

unsigned
A4Manager::closFor(const WlState &w) const
{
    if (w.effective == QosPriority::High)
        return w.desc.is_io ? kClosIoHpw : kClosNonIoHpw;
    if (w.antagonist && prm.pseudo_bypass)
        return kClosTrash;
    if (prm.per_tenant_clos && w.lp_clos != 0)
        return w.lp_clos;
    return kClosLpw;
}

bool
A4Manager::isLpw(const WlState &w) const
{
    return w.effective == QosPriority::Low &&
           !(w.antagonist && prm.pseudo_bypass);
}

void
A4Manager::regroupLpTenants()
{
    if (!prm.per_tenant_clos)
        return;

    std::vector<std::size_t> lpws;
    for (std::size_t i = 0; i < wls.size(); ++i) {
        if (isLpw(wls[i]))
            lpws.push_back(i);
        else
            wls[i].lp_clos = 0; // left the LP Zone
    }

    // CLOS 0 is the OS default and 1..kClosTrash are the fixed A4
    // classes; everything past them is available to LP tenants.
    const unsigned budget = cat.numClos() > kClosTrash + 1
                                ? cat.numClos() - (kClosTrash + 1)
                                : 0;
    if (budget == 0 || lpws.empty()) {
        for (std::size_t i : lpws)
            wls[i].lp_clos = 0; // shared kClosLpw
        return;
    }

    // Cluster by observed cache behavior. Before the first monitor
    // interval every sample is zero, so every tenant looks alike —
    // groupTenants() still hands out distinct groups while the count
    // fits the budget, and the id tie-break keeps it deterministic.
    std::vector<ClosTenant> tenants;
    tenants.reserve(lpws.size());
    for (std::size_t i : lpws) {
        const WlState &w = wls[i];
        tenants.push_back({w.desc.id, w.last.llcMissRate(),
                           w.last.missesPerAccess()});
    }
    const std::vector<unsigned> grp = groupTenants(tenants, budget);

    bool changed = false;
    unsigned groups = 0;
    for (std::size_t k = 0; k < lpws.size(); ++k) {
        const std::uint32_t want = kClosTrash + 1 + grp[k];
        if (wls[lpws[k]].lp_clos != want) {
            wls[lpws[k]].lp_clos = want;
            changed = true;
        }
        groups = std::max(groups, grp[k] + 1);
    }
    if (changed)
        inform(sformat("A4: grouped %zu LP tenants into %u CLOS",
                       lpws.size(), groups));
}

void
A4Manager::applyAllocation()
{
    regroupLpTenants();

    const CacheGeometry &g = cache.geometry();
    const WayMask full = CatController::fullMask(g.llc_ways);
    const bool io = anyIoHpw() && prm.safeguard_io;

    // I/O HPWs are deliberately unconstrained (O3: they must cover the
    // DCA and inclusive ways); non-I/O HPWs are kept off the DCA ways
    // once I/O HPWs exist (latent-contention avoidance).
    cat.setClosMask(kClosIoHpw, full);
    cat.setClosMask(kClosNonIoHpw,
                    io ? CatController::makeMask(g.dca_ways,
                                                 g.llc_ways - 1)
                       : full);
    const WayMask lp_mask = CatController::makeMask(lp_lo, lp_hi);
    cat.setClosMask(kClosLpw, lp_mask);
    cat.setClosMask(kClosTrash,
                    CatController::makeMask(std::min(trash_lo, lp_hi),
                                            lp_hi));
    // Per-tenant / grouped LP CLOS all carry the LP-Zone mask: the
    // grouping decides CLOS-id sharing (so per-group occupancy is
    // observable and the id space never exhausts), not capacity — the
    // paper's LP-Zone allocation semantics are preserved exactly.
    for (const auto &w : wls) {
        if (w.lp_clos != 0)
            cat.setClosMask(w.lp_clos, lp_mask);
    }

    for (const auto &w : wls) {
        unsigned clos = closFor(w);
        for (CoreId c : w.desc.cores)
            cat.assignCore(c, clos);
    }
}

void
A4Manager::applyRevertAllocation()
{
    // Probe allocation: LP Zone back at the initial partitions; the
    // other zones keep their current shape.
    unsigned cur_lo = lp_lo, cur_hi = lp_hi;
    lp_lo = lp_init_lo;
    lp_hi = lp_init_hi;
    applyAllocation();
    lp_lo = cur_lo;
    lp_hi = cur_hi;
    cat.setClosMask(kClosLpw,
                    CatController::makeMask(lp_init_lo, lp_init_hi));
}

void
A4Manager::enterInit()
{
    computeInitialLayout();
    lp_lo = lp_init_lo;
    lp_hi = lp_init_hi;
    trash_lo = lp_lo;
    trash_frozen = false;
    shrink_pending_check = false;
    stable_count = 0;
    revert_count = 0;
    intervals_since_expand = 0;
    for (auto &w : wls)
        w.baseline_hit = -1.0;
    applyAllocation();
    phase_ = Phase::Baseline;
    layout_dirty = false;
}

// --- measurements ----------------------------------------------------------

void
A4Manager::recordBaselines()
{
    for (auto &w : wls) {
        if (w.effective != QosPriority::High)
            continue;
        if (w.last.llc_hit + w.last.llc_miss >= prm.min_accesses)
            w.baseline_hit = w.last.llcHitRate();
    }
}

bool
A4Manager::hpwDegradedVsBaseline() const
{
    for (const auto &w : wls) {
        if (w.effective != QosPriority::High || w.baseline_hit < 0.0)
            continue;
        if (w.last.llc_hit + w.last.llc_miss < prm.min_accesses)
            continue;
        if (w.baseline_hit - w.last.llcHitRate() > prm.hpw_llc_hit_thr)
            return true;
    }
    return false;
}

// --- detectors -------------------------------------------------------------

void
A4Manager::runDetectors()
{
    for (auto &w : wls) {
        // (F2) Storage-driven DMA-leak detection (§5.4).
        if (prm.selective_ddio && w.desc.is_io &&
            w.desc.io_class == DeviceClass::Storage && !w.ddio_off) {
            const WorkloadSample &s = w.last;
            bool leaky = s.dma_written >= prm.min_dma_lines &&
                         s.dcaMissRate() > prm.dmalk_dca_ms_thr;
            bool missing = s.llc_hit + s.llc_miss >= prm.min_accesses &&
                           s.llcMissRate() > prm.dmalk_llc_ms_thr;
            bool dominant = last_sys.ingressShare(w.desc.port) >
                            prm.dmalk_io_tp_thr;
            if (leaky && missing && dominant) {
                ddio.disableDcaForPort(w.desc.port);
                w.ddio_off = true;
                w.antagonist = true;
                w.effective = QosPriority::Low;
                w.ingress_at_detect = static_cast<double>(
                    last_sys.ports[w.desc.port].ingress_bytes);
                inform(sformat("A4: DDIO disabled for '%s' (port %u)",
                               w.desc.name.c_str(), w.desc.port));
                enterInit();
                return;
            }
        }

        // Pseudo-LLC-bypass antagonist detection (§5.5).
        if (prm.pseudo_bypass && !w.desc.is_io && !w.antagonist) {
            const WorkloadSample &s = w.last;
            bool enough = s.mlc_hit + s.mlc_miss >= prm.min_accesses &&
                          s.llc_hit + s.llc_miss >= prm.min_accesses;
            if (enough && s.mlcMissRate() > prm.ant_cache_miss_thr &&
                s.llcMissRate() > prm.ant_cache_miss_thr) {
                w.antagonist = true;
                w.effective = QosPriority::Low;
                w.miss_at_detect = s.llcMissRate();
                trash_lo = lp_lo;
                trash_frozen = false;
                shrink_pending_check = false;
                inform(sformat("A4: '%s' detected as antagonist",
                               w.desc.name.c_str()));
                applyAllocation();
            }
        }
    }
}

void
A4Manager::runTrashShrink()
{
    if (!prm.pseudo_bypass)
        return;
    bool any_ant = std::any_of(wls.begin(), wls.end(),
                               [](const WlState &w) {
                                   return w.antagonist;
                               });
    if (!any_ant)
        return;

    // Stability metrics: antagonist miss rates, storage-antagonist
    // I/O throughput, and system memory bandwidth (§5.5).
    double miss_sum = 0.0;
    unsigned miss_n = 0;
    double io_tp = 0.0;
    for (const auto &w : wls) {
        if (!w.antagonist)
            continue;
        if (!w.desc.is_io &&
            w.last.llc_hit + w.last.llc_miss >= prm.min_accesses) {
            miss_sum += w.last.llcMissRate();
            ++miss_n;
        }
        if (w.desc.is_io && w.desc.port < last_sys.ports.size()) {
            io_tp += static_cast<double>(
                last_sys.ports[w.desc.port].ingress_bytes);
        }
    }
    double miss_now = miss_n ? miss_sum / miss_n : 0.0;
    double membw_now = static_cast<double>(last_sys.mem_rd_bytes +
                                           last_sys.mem_wr_bytes);

    if (shrink_pending_check) {
        shrink_pending_check = false;
        bool unstable = false;
        if (missrate_before_shrink > 0.0 &&
            miss_now > missrate_before_shrink *
                           (1.0 + prm.stability_fluct))
            unstable = true;
        if (iotp_before_shrink > 0.0 &&
            io_tp < iotp_before_shrink * (1.0 - prm.stability_fluct))
            unstable = true;
        if (membw_before_shrink > 0.0 &&
            membw_now > membw_before_shrink *
                            (1.0 + prm.stability_fluct))
            unstable = true;
        if (unstable) {
            if (trash_lo > lp_lo)
                --trash_lo;
            trash_frozen = true;
            applyAllocation();
            return;
        }
    }

    if (trash_frozen)
        return;

    // Walk antagonists down toward the single rightmost LP way.
    if (trash_lo < lp_hi) {
        missrate_before_shrink = miss_now;
        iotp_before_shrink = io_tp;
        membw_before_shrink = membw_now;
        ++trash_lo;
        shrink_pending_check = true;
        applyAllocation();
    }
}

void
A4Manager::runRestorations()
{
    for (auto &w : wls) {
        if (!w.antagonist)
            continue;

        if (w.ddio_off) {
            // Storage antagonist: a large swing in storage throughput
            // signals a phase change (§5.6).
            double now_b = w.desc.port < last_sys.ports.size()
                               ? static_cast<double>(
                                     last_sys.ports[w.desc.port]
                                         .ingress_bytes)
                               : 0.0;
            if (w.ingress_at_detect > 0.0 &&
                std::abs(now_b - w.ingress_at_detect) /
                        w.ingress_at_detect >
                    prm.restore_fluct) {
                ddio.enableDcaForPort(w.desc.port);
                w.ddio_off = false;
                w.antagonist = false;
                w.effective = w.desc.priority;
                inform(sformat("A4: DDIO re-enabled for '%s'",
                               w.desc.name.c_str()));
                enterInit();
                return;
            }
        } else if (!w.desc.is_io) {
            if (w.last.llc_hit + w.last.llc_miss < prm.min_accesses)
                continue;
            double miss_now = w.last.llcMissRate();
            if (std::abs(miss_now - w.miss_at_detect) >
                prm.restore_fluct) {
                w.antagonist = false;
                w.effective = w.desc.priority;
                inform(sformat("A4: '%s' no longer antagonistic",
                               w.desc.name.c_str()));
                if (w.desc.priority == QosPriority::High) {
                    enterInit();
                    return;
                }
                applyAllocation();
            }
        }
    }
}

// --- the monitoring step ---------------------------------------------------

void
A4Manager::tick()
{
    ++tick_count;
    sampleAll();

    if (layout_dirty) {
        enterInit();
        return;
    }

    switch (phase_) {
      case Phase::Init:
        enterInit();
        break;

      case Phase::Baseline:
        recordBaselines();
        phase_ = Phase::Expanding;
        intervals_since_expand = 0;
        break;

      case Phase::Expanding:
        if (hpwDegradedVsBaseline()) {
            // Undo the last expansion and settle.
            if (lp_lo < lp_init_lo)
                ++lp_lo;
            applyAllocation();
            phase_ = Phase::Stable;
            stable_count = 0;
        } else if (++intervals_since_expand >= prm.expand_period) {
            if (lp_lo > lp_min_lo) {
                --lp_lo;
                applyAllocation();
                intervals_since_expand = 0;
            } else {
                phase_ = Phase::Stable;
                stable_count = 0;
            }
        }
        break;

      case Phase::Stable: {
        for (auto &w : wls) {
            if (w.effective == QosPriority::High &&
                w.last.llc_hit + w.last.llc_miss >= prm.min_accesses)
                w.stable_hit = w.last.llcHitRate();
        }
        if (hpwDegradedVsBaseline()) {
            enterInit(); // execution-phase change
            break;
        }
        runDetectors();
        if (phase_ != Phase::Baseline) {
            runTrashShrink();
            runRestorations();
        }
        if (phase_ == Phase::Stable &&
            prm.enable_revert &&
            ++stable_count >= prm.stable_intervals) {
            saved_lp_lo = lp_lo;
            applyRevertAllocation();
            revert_count = 0;
            phase_ = Phase::Reverting;
        }
        break;
      }

      case Phase::Reverting:
        if (++revert_count >= prm.revert_intervals) {
            // Attainable hit rate vs the stable allocation (§5.6).
            bool changed = false;
            for (const auto &w : wls) {
                if (w.effective != QosPriority::High ||
                    w.stable_hit < 0.0)
                    continue;
                if (w.last.llc_hit + w.last.llc_miss <
                    prm.min_accesses)
                    continue;
                if (w.last.llcHitRate() - w.stable_hit >
                    prm.hpw_llc_hit_thr)
                    changed = true;
            }
            lp_lo = saved_lp_lo;
            applyAllocation();
            if (changed) {
                enterInit();
            } else {
                phase_ = Phase::Stable;
                stable_count = 0;
            }
        }
        break;
    }
}

// --- introspection -----------------------------------------------------------

WayMask
A4Manager::lpMask() const
{
    return CatController::makeMask(lp_lo, lp_hi);
}

WayMask
A4Manager::hpNonIoMask() const
{
    return cat.closMask(kClosNonIoHpw);
}

WayMask
A4Manager::trashMask() const
{
    return cat.closMask(kClosTrash);
}

bool
A4Manager::isAntagonist(WorkloadId id) const
{
    for (const auto &w : wls) {
        if (w.desc.id == id)
            return w.antagonist;
    }
    return false;
}

bool
A4Manager::isDemoted(WorkloadId id) const
{
    for (const auto &w : wls) {
        if (w.desc.id == id) {
            return w.desc.priority == QosPriority::High &&
                   w.effective == QosPriority::Low;
        }
    }
    return false;
}

bool
A4Manager::ddioDisabled(PortId port) const
{
    return !ddio.allocatingWrites(port);
}

unsigned
A4Manager::closDemand() const
{
    unsigned lpws = 0;
    for (const auto &w : wls) {
        if (isLpw(w))
            ++lpws;
    }
    return kClosTrash + 1 + lpws;
}

unsigned
A4Manager::lpClosOf(WorkloadId id) const
{
    for (const auto &w : wls) {
        if (w.desc.id == id)
            return w.lp_clos != 0 ? w.lp_clos : kClosLpw;
    }
    return kClosLpw;
}

unsigned
A4Manager::lpGroupCount() const
{
    std::vector<unsigned> seen;
    for (const auto &w : wls) {
        if (!isLpw(w))
            continue;
        const unsigned c = w.lp_clos != 0 ? w.lp_clos : kClosLpw;
        if (std::find(seen.begin(), seen.end(), c) == seen.end())
            seen.push_back(c);
    }
    return static_cast<unsigned>(seen.size());
}

// --- snapshot hooks --------------------------------------------------------

namespace
{

void
saveSample(Serializer &s, const WorkloadSample &w)
{
    s.u64(w.mlc_hit);
    s.u64(w.mlc_miss);
    s.u64(w.llc_hit);
    s.u64(w.llc_miss);
    s.u64(w.dma_written);
    s.u64(w.dma_update);
    s.u64(w.dma_alloc);
    s.u64(w.dma_leaked);
    s.u64(w.dma_nonalloc);
    s.u64(w.mem_rd_lines);
    s.u64(w.mem_wr_lines);
    s.u64(w.bloat_inserts);
    s.u64(w.migrated);
}

void
restoreSample(Deserializer &d, WorkloadSample &w)
{
    w.mlc_hit = d.u64();
    w.mlc_miss = d.u64();
    w.llc_hit = d.u64();
    w.llc_miss = d.u64();
    w.dma_written = d.u64();
    w.dma_update = d.u64();
    w.dma_alloc = d.u64();
    w.dma_leaked = d.u64();
    w.dma_nonalloc = d.u64();
    w.mem_rd_lines = d.u64();
    w.mem_wr_lines = d.u64();
    w.bloat_inserts = d.u64();
    w.migrated = d.u64();
}

} // namespace

void
A4Manager::saveState(Serializer &s) const
{
    s.begin("a4");
    pcm.saveState(s);
    s.u64(wls.size());
    for (const WlState &w : wls) {
        s.u64(w.desc.id);
        s.u8(static_cast<std::uint8_t>(w.effective));
        s.boolean(w.antagonist);
        s.boolean(w.ddio_off);
        s.f64(w.baseline_hit);
        s.f64(w.stable_hit);
        s.f64(w.miss_at_detect);
        s.f64(w.ingress_at_detect);
        s.u32(w.lp_clos);
        saveSample(s, w.last);
    }
    s.u64(last_sys.interval_ns);
    s.u64(last_sys.mem_rd_bytes);
    s.u64(last_sys.mem_wr_bytes);
    s.u64(last_sys.ports.size());
    for (const PortSample &p : last_sys.ports) {
        s.u8(static_cast<std::uint8_t>(p.dev_class));
        s.u64(p.ingress_bytes);
        s.u64(p.egress_bytes);
    }
    s.u8(static_cast<std::uint8_t>(phase_));
    s.boolean(running);
    s.boolean(layout_dirty);
    s.u32(tick_count);
    s.u32(lp_lo);
    s.u32(lp_hi);
    s.u32(lp_init_lo);
    s.u32(lp_init_hi);
    s.u32(lp_min_lo);
    s.u32(saved_lp_lo);
    s.u32(trash_lo);
    s.boolean(trash_frozen);
    s.f64(membw_before_shrink);
    s.f64(missrate_before_shrink);
    s.f64(iotp_before_shrink);
    s.boolean(shrink_pending_check);
    s.u32(intervals_since_expand);
    s.u32(stable_count);
    s.u32(revert_count);
    periodic_ev.saveQueued(s);
    s.end("a4");
}

void
A4Manager::restoreState(Deserializer &d)
{
    d.begin("a4");
    pcm.restoreState(d);
    if (d.u64() != wls.size())
        throw SnapshotError("A4Manager: workload count mismatch");
    for (WlState &w : wls) {
        if (d.u64() != w.desc.id)
            throw SnapshotError("A4Manager: workload id mismatch");
        w.effective = static_cast<QosPriority>(d.u8());
        w.antagonist = d.boolean();
        w.ddio_off = d.boolean();
        w.baseline_hit = d.f64();
        w.stable_hit = d.f64();
        w.miss_at_detect = d.f64();
        w.ingress_at_detect = d.f64();
        w.lp_clos = d.u32();
        restoreSample(d, w.last);
    }
    last_sys.interval_ns = d.u64();
    last_sys.mem_rd_bytes = d.u64();
    last_sys.mem_wr_bytes = d.u64();
    last_sys.ports.resize(d.u64());
    for (PortSample &p : last_sys.ports) {
        p.dev_class = static_cast<DeviceClass>(d.u8());
        p.ingress_bytes = d.u64();
        p.egress_bytes = d.u64();
    }
    phase_ = static_cast<Phase>(d.u8());
    running = d.boolean();
    layout_dirty = d.boolean();
    tick_count = d.u32();
    lp_lo = d.u32();
    lp_hi = d.u32();
    lp_init_lo = d.u32();
    lp_init_hi = d.u32();
    lp_min_lo = d.u32();
    saved_lp_lo = d.u32();
    trash_lo = d.u32();
    trash_frozen = d.boolean();
    membw_before_shrink = d.f64();
    missrate_before_shrink = d.f64();
    iotp_before_shrink = d.f64();
    shrink_pending_check = d.boolean();
    intervals_since_expand = d.u32();
    stable_count = d.u32();
    revert_count = d.u32();
    // The daemon's carrier is lazily initialized by start(); on the
    // restore path start() is never called, so initialize it here
    // before re-arming it at its saved key.
    if (!periodic_ev.initialized())
        periodic_ev.init(eng, [this] { periodic(); });
    periodic_ev.restoreQueued(d);
    d.end("a4");
}

} // namespace a4
