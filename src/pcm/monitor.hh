/**
 * @file
 * Performance Counter Monitor facade.
 *
 * The A4 daemon on real hardware observes the system exclusively
 * through Intel PCM: per-core cache events, DDIO hit/miss, memory
 * channel bandwidth, and per-port IIO (PCIe) traffic. This facade
 * provides the same observables from the simulator's counters, with
 * the same snapshot-delta semantics (counters are monotonic; a
 * monitor holds its own previous snapshot per counter set, so
 * multiple monitors — the A4 daemon and the experiment harness —
 * never perturb each other).
 *
 * Sampling first applies any deferred (batched) device arrivals up
 * to now() through the cache's observation barrier, so a sample
 * taken mid-burst-interval reads exactly the counters a per-packet
 * event schedule would have produced. Because the A4 daemon samples
 * at the top of every tick, all of its CAT/DDIO reconfiguration
 * decisions — and the register flips themselves — land at the same
 * point of the applied access stream in both arrival modes.
 */

#ifndef A4_PCM_MONITOR_HH
#define A4_PCM_MONITOR_HH

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "iodev/pcie.hh"
#include "mem/dram.hh"
#include "sim/engine.hh"
#include "sim/serialize.hh"

namespace a4
{

/** Interval delta of one workload's cache/DMA events. */
struct WorkloadSample
{
    std::uint64_t mlc_hit = 0;
    std::uint64_t mlc_miss = 0;
    std::uint64_t llc_hit = 0;
    std::uint64_t llc_miss = 0;
    std::uint64_t dma_written = 0;
    std::uint64_t dma_update = 0;
    std::uint64_t dma_alloc = 0;
    std::uint64_t dma_leaked = 0;
    std::uint64_t dma_nonalloc = 0;
    std::uint64_t mem_rd_lines = 0;
    std::uint64_t mem_wr_lines = 0;
    std::uint64_t bloat_inserts = 0;
    std::uint64_t migrated = 0;

    double
    llcHitRate() const
    {
        return ratio(double(llc_hit), double(llc_hit + llc_miss));
    }

    double llcMissRate() const
    {
        return ratio(double(llc_miss), double(llc_hit + llc_miss));
    }

    double
    mlcMissRate() const
    {
        return ratio(double(mlc_miss), double(mlc_hit + mlc_miss));
    }

    /** Misses per access across the hierarchy (Fig. 3's y-axis). */
    double
    missesPerAccess() const
    {
        return ratio(double(llc_miss), double(mlc_hit + mlc_miss));
    }

    /** Fraction of DMA-written lines evicted unconsumed ("DCA miss"). */
    double
    dcaMissRate() const
    {
        return ratio(double(dma_leaked), double(dma_written));
    }
};

/** Per-port PCIe traffic during the interval. */
struct PortSample
{
    DeviceClass dev_class = DeviceClass::Other;
    std::uint64_t ingress_bytes = 0; ///< device-to-host ("PCIe write")
    std::uint64_t egress_bytes = 0;
};

/** System-wide interval sample. */
struct SystemSample
{
    Tick interval_ns = 0;
    std::uint64_t mem_rd_bytes = 0;
    std::uint64_t mem_wr_bytes = 0;
    std::vector<PortSample> ports;

    double
    memReadBwBps() const
    {
        return interval_ns
                   ? double(mem_rd_bytes) * 1e9 / double(interval_ns)
                   : 0.0;
    }

    double
    memWriteBwBps() const
    {
        return interval_ns
                   ? double(mem_wr_bytes) * 1e9 / double(interval_ns)
                   : 0.0;
    }

    /** Total device-to-host bytes this interval. */
    std::uint64_t
    totalIngress() const
    {
        std::uint64_t sum = 0;
        for (const auto &p : ports)
            sum += p.ingress_bytes;
        return sum;
    }

    /** Share of ingress contributed by one port, in [0, 1]. */
    double
    ingressShare(PortId port) const
    {
        std::uint64_t total = totalIngress();
        if (!total || port >= ports.size())
            return 0.0;
        return double(ports[port].ingress_bytes) / double(total);
    }
};

/** Snapshot-delta monitor over the simulated counters. */
class PcmMonitor
{
  public:
    PcmMonitor(Engine &eng, CacheSystem &cache, Dram &dram,
               PcieTopology &pcie)
        : eng(eng), cache(cache), dram(dram), pcie(pcie)
    {}

    /** Delta of @p id's counters since this monitor's last sample. */
    WorkloadSample sampleWorkload(WorkloadId id);

    /** Delta of system-wide counters since the last system sample. */
    SystemSample sampleSystem();

    /** @name Snapshot hooks: previous-snapshot registers, written in
     *  sorted workload order for a deterministic stream. @{ */
    void
    saveState(Serializer &s) const
    {
        s.begin("pcm");
        std::vector<WorkloadId> ids;
        ids.reserve(prev_wl.size());
        for (const auto &[id, prev] : prev_wl)
            ids.push_back(id);
        std::sort(ids.begin(), ids.end());
        s.u64(ids.size());
        for (WorkloadId id : ids) {
            const WlPrev &p = prev_wl.at(id);
            s.u64(id);
            s.u64(p.mlc_hit);
            s.u64(p.mlc_miss);
            s.u64(p.llc_hit);
            s.u64(p.llc_miss);
            s.u64(p.dma_written);
            s.u64(p.dma_update);
            s.u64(p.dma_alloc);
            s.u64(p.dma_leaked);
            s.u64(p.dma_nonalloc);
            s.u64(p.mem_rd);
            s.u64(p.mem_wr);
            s.u64(p.bloat);
            s.u64(p.migrated);
        }
        s.u64(prev_ports.size());
        for (const PortPrev &p : prev_ports) {
            s.u64(p.ingress);
            s.u64(p.egress);
        }
        s.u64(prev_rd);
        s.u64(prev_wr);
        s.u64(prev_time);
        s.end("pcm");
    }

    void
    restoreState(Deserializer &d)
    {
        d.begin("pcm");
        prev_wl.clear();
        const std::uint64_t n = d.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const auto id = static_cast<WorkloadId>(d.u64());
            WlPrev p;
            p.mlc_hit = d.u64();
            p.mlc_miss = d.u64();
            p.llc_hit = d.u64();
            p.llc_miss = d.u64();
            p.dma_written = d.u64();
            p.dma_update = d.u64();
            p.dma_alloc = d.u64();
            p.dma_leaked = d.u64();
            p.dma_nonalloc = d.u64();
            p.mem_rd = d.u64();
            p.mem_wr = d.u64();
            p.bloat = d.u64();
            p.migrated = d.u64();
            prev_wl.emplace(id, p);
        }
        prev_ports.resize(d.u64());
        for (PortPrev &p : prev_ports) {
            p.ingress = d.u64();
            p.egress = d.u64();
        }
        prev_rd = d.u64();
        prev_wr = d.u64();
        prev_time = d.u64();
        d.end("pcm");
    }
    /** @} */

  private:
    struct WlPrev
    {
        std::uint64_t mlc_hit = 0, mlc_miss = 0;
        std::uint64_t llc_hit = 0, llc_miss = 0;
        std::uint64_t dma_written = 0, dma_update = 0, dma_alloc = 0;
        std::uint64_t dma_leaked = 0, dma_nonalloc = 0;
        std::uint64_t mem_rd = 0, mem_wr = 0;
        std::uint64_t bloat = 0, migrated = 0;
    };

    struct PortPrev
    {
        std::uint64_t ingress = 0, egress = 0;
    };

    Engine &eng;
    CacheSystem &cache;
    Dram &dram;
    PcieTopology &pcie;

    std::unordered_map<WorkloadId, WlPrev> prev_wl;
    std::vector<PortPrev> prev_ports;
    std::uint64_t prev_rd = 0;
    std::uint64_t prev_wr = 0;
    Tick prev_time = 0;
};

} // namespace a4

#endif // A4_PCM_MONITOR_HH
