#include "pcm/monitor.hh"

namespace a4
{

WorkloadSample
PcmMonitor::sampleWorkload(WorkloadId id)
{
    // Counters must reflect every access logically before the sample:
    // apply deferred (batched) device arrivals up to now first.
    cache.drainDeferred(eng.now());
    const WorkloadCounters &c = cache.wlConst(id);
    WlPrev &p = prev_wl[id];
    WorkloadSample s;
    s.mlc_hit = c.mlc_hit.delta(p.mlc_hit);
    s.mlc_miss = c.mlc_miss.delta(p.mlc_miss);
    s.llc_hit = c.llc_hit.delta(p.llc_hit);
    s.llc_miss = c.llc_miss.delta(p.llc_miss);
    s.dma_written = c.dma_lines_written.delta(p.dma_written);
    s.dma_update = c.dma_write_update.delta(p.dma_update);
    s.dma_alloc = c.dma_write_alloc.delta(p.dma_alloc);
    s.dma_leaked = c.dma_leaked.delta(p.dma_leaked);
    s.dma_nonalloc = c.dma_nonalloc.delta(p.dma_nonalloc);
    s.mem_rd_lines = c.mem_read_lines.delta(p.mem_rd);
    s.mem_wr_lines = c.mem_write_lines.delta(p.mem_wr);
    s.bloat_inserts = c.bloat_inserts.delta(p.bloat);
    s.migrated = c.migrated_inclusive.delta(p.migrated);
    return s;
}

SystemSample
PcmMonitor::sampleSystem()
{
    // DRAM/PCIe byte counters advance when deferred device arrivals
    // are applied; drain so the interval boundary is exact.
    cache.drainDeferred(eng.now());
    SystemSample s;
    s.interval_ns = eng.now() - prev_time;
    prev_time = eng.now();
    s.mem_rd_bytes = dram.readBytes().delta(prev_rd);
    s.mem_wr_bytes = dram.writeBytes().delta(prev_wr);

    prev_ports.resize(pcie.numPorts());
    s.ports.resize(pcie.numPorts());
    for (PortId p = 0; p < pcie.numPorts(); ++p) {
        PciePort &port = pcie.port(p);
        s.ports[p].dev_class = port.dev_class;
        s.ports[p].ingress_bytes =
            port.ingress_bytes.delta(prev_ports[p].ingress);
        s.ports[p].egress_bytes =
            port.egress_bytes.delta(prev_ports[p].egress);
    }
    return s;
}

} // namespace a4
