#include "rdt/cat.hh"

#include <algorithm>
#include <numeric>

#include "sim/log.hh"

namespace a4
{

CatController::CatController(unsigned num_ways, unsigned num_cores,
                             unsigned num_clos)
    : n_ways(num_ways)
{
    if (num_ways == 0 || num_ways > 31)
        fatal(sformat("CAT: unsupported way count %u", num_ways));
    if (num_clos == 0)
        fatal("CAT: need at least one CLOS");
    masks.assign(num_clos, fullMask(num_ways));
    core_clos.assign(num_cores, 0);
}

void
CatController::checkClos(unsigned clos) const
{
    if (clos >= masks.size())
        fatal(sformat("CAT: CLOS %u out of range (have %zu)", clos,
                      masks.size()));
}

void
CatController::setClosMask(unsigned clos, WayMask mask)
{
    checkClos(clos);
    if (mask == 0)
        fatal("CAT: empty capacity mask rejected");
    if (mask & ~fullMask(n_ways))
        fatal(sformat("CAT: mask 0x%x has bits beyond way %u", mask,
                      n_ways - 1));
    if (!isContiguous(mask))
        fatal(sformat("CAT: non-contiguous mask 0x%x rejected", mask));
    masks[clos] = mask;
}

WayMask
CatController::closMask(unsigned clos) const
{
    checkClos(clos);
    return masks[clos];
}

void
CatController::assignCore(CoreId core, unsigned clos)
{
    checkClos(clos);
    if (core >= core_clos.size())
        fatal(sformat("CAT: core %u out of range", core));
    core_clos[core] = clos;
}

unsigned
CatController::closOfCore(CoreId core) const
{
    if (core >= core_clos.size())
        fatal(sformat("CAT: core %u out of range", core));
    return core_clos[core];
}

WayMask
CatController::maskForCore(CoreId core) const
{
    return masks[closOfCore(core)];
}

void
CatController::resetAll()
{
    for (auto &m : masks)
        m = fullMask(n_ways);
    for (auto &c : core_clos)
        c = 0;
}

bool
CatController::isContiguous(WayMask mask)
{
    if (mask == 0)
        return false;
    // Strip trailing zeros, then the run must be all-ones.
    while (!(mask & 1))
        mask >>= 1;
    return (mask & (mask + 1)) == 0;
}

WayMask
CatController::makeMask(unsigned lo_way, unsigned hi_way)
{
    if (lo_way > hi_way)
        fatal(sformat("CAT: invalid way range [%u:%u]", lo_way, hi_way));
    WayMask m = 0;
    for (unsigned w = lo_way; w <= hi_way; ++w)
        m |= (1u << w);
    return m;
}

std::vector<unsigned>
groupTenants(const std::vector<ClosTenant> &tenants, unsigned budget)
{
    if (budget == 0)
        fatal("groupTenants: zero CLOS budget");
    const std::size_t n = tenants.size();
    std::vector<unsigned> group(n, 0);
    if (n == 0)
        return group;

    // Sort by similarity signal; id breaks every tie so equal signals
    // (e.g. the all-zero samples before the first monitor interval)
    // still order deterministically.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const ClosTenant &ta = tenants[a];
                  const ClosTenant &tb = tenants[b];
                  if (ta.miss_rate != tb.miss_rate)
                      return ta.miss_rate < tb.miss_rate;
                  if (ta.mpa != tb.mpa)
                      return ta.mpa < tb.mpa;
                  return ta.id < tb.id;
              });

    if (n <= budget) {
        for (std::size_t r = 0; r < n; ++r)
            group[order[r]] = static_cast<unsigned>(r);
        return group;
    }

    // Split the sorted sequence at the budget-1 widest gaps: the
    // resulting runs are the groups (classic 1-D single-linkage
    // clustering, exact and deterministic).
    std::vector<std::size_t> gaps(n - 1);
    std::iota(gaps.begin(), gaps.end(), std::size_t{0});
    auto gapMiss = [&](std::size_t i) {
        return tenants[order[i + 1]].miss_rate -
               tenants[order[i]].miss_rate;
    };
    auto gapMpa = [&](std::size_t i) {
        return tenants[order[i + 1]].mpa - tenants[order[i]].mpa;
    };
    std::sort(gaps.begin(), gaps.end(),
              [&](std::size_t a, std::size_t b) {
                  if (gapMiss(a) != gapMiss(b))
                      return gapMiss(a) > gapMiss(b);
                  if (gapMpa(a) != gapMpa(b))
                      return gapMpa(a) > gapMpa(b);
                  return a < b;
              });
    gaps.resize(budget - 1);
    std::sort(gaps.begin(), gaps.end());

    unsigned g = 0;
    std::size_t cut = 0;
    for (std::size_t r = 0; r < n; ++r) {
        group[order[r]] = g;
        if (cut < gaps.size() && gaps[cut] == r) {
            ++g;
            ++cut;
        }
    }
    return group;
}

std::string
CatController::paperHex(WayMask mask) const
{
    // Paper convention: way k maps to bit (numWays-1-k).
    WayMask flipped = 0;
    for (unsigned w = 0; w < n_ways; ++w) {
        if (mask & (1u << w))
            flipped |= (1u << (n_ways - 1 - w));
    }
    return sformat("0x%03X", flipped);
}

} // namespace a4
