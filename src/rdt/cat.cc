#include "rdt/cat.hh"

#include "sim/log.hh"

namespace a4
{

CatController::CatController(unsigned num_ways, unsigned num_cores,
                             unsigned num_clos)
    : n_ways(num_ways)
{
    if (num_ways == 0 || num_ways > 31)
        fatal(sformat("CAT: unsupported way count %u", num_ways));
    if (num_clos == 0)
        fatal("CAT: need at least one CLOS");
    masks.assign(num_clos, fullMask(num_ways));
    core_clos.assign(num_cores, 0);
}

void
CatController::checkClos(unsigned clos) const
{
    if (clos >= masks.size())
        fatal(sformat("CAT: CLOS %u out of range (have %zu)", clos,
                      masks.size()));
}

void
CatController::setClosMask(unsigned clos, WayMask mask)
{
    checkClos(clos);
    if (mask == 0)
        fatal("CAT: empty capacity mask rejected");
    if (mask & ~fullMask(n_ways))
        fatal(sformat("CAT: mask 0x%x has bits beyond way %u", mask,
                      n_ways - 1));
    if (!isContiguous(mask))
        fatal(sformat("CAT: non-contiguous mask 0x%x rejected", mask));
    masks[clos] = mask;
}

WayMask
CatController::closMask(unsigned clos) const
{
    checkClos(clos);
    return masks[clos];
}

void
CatController::assignCore(CoreId core, unsigned clos)
{
    checkClos(clos);
    if (core >= core_clos.size())
        fatal(sformat("CAT: core %u out of range", core));
    core_clos[core] = clos;
}

unsigned
CatController::closOfCore(CoreId core) const
{
    if (core >= core_clos.size())
        fatal(sformat("CAT: core %u out of range", core));
    return core_clos[core];
}

WayMask
CatController::maskForCore(CoreId core) const
{
    return masks[closOfCore(core)];
}

void
CatController::resetAll()
{
    for (auto &m : masks)
        m = fullMask(n_ways);
    for (auto &c : core_clos)
        c = 0;
}

bool
CatController::isContiguous(WayMask mask)
{
    if (mask == 0)
        return false;
    // Strip trailing zeros, then the run must be all-ones.
    while (!(mask & 1))
        mask >>= 1;
    return (mask & (mask + 1)) == 0;
}

WayMask
CatController::makeMask(unsigned lo_way, unsigned hi_way)
{
    if (lo_way > hi_way)
        fatal(sformat("CAT: invalid way range [%u:%u]", lo_way, hi_way));
    WayMask m = 0;
    for (unsigned w = lo_way; w <= hi_way; ++w)
        m |= (1u << w);
    return m;
}

std::string
CatController::paperHex(WayMask mask) const
{
    // Paper convention: way k maps to bit (numWays-1-k).
    WayMask flipped = 0;
    for (unsigned w = 0; w < n_ways; ++w) {
        if (mask & (1u << w))
            flipped |= (1u << (n_ways - 1 - w));
    }
    return sformat("0x%03X", flipped);
}

} // namespace a4
