/**
 * @file
 * Intel Cache Allocation Technology (CAT) model.
 *
 * Mirrors the semantics of the real intel-cmt-cat/pqos interface that
 * the A4 daemon drives:
 *  - a small number of classes of service (CLOS), each with an 11-bit
 *    LLC capacity mask;
 *  - masks must be contiguous and non-empty (hardware restriction);
 *  - each core is associated with exactly one CLOS;
 *  - masks constrain only *new* allocations — changing a mask never
 *    flushes lines already resident.
 *
 * Way-index convention: way 0 is the leftmost LLC way (the first DCA
 * way); way 10 is the rightmost (the last inclusive way). The paper
 * prints masks with way 0 as the most-significant bit (way[0:1] =
 * 0x600); paperHex() converts to that convention for display.
 */

#ifndef A4_RDT_CAT_HH
#define A4_RDT_CAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/serialize.hh"
#include "sim/types.hh"

namespace a4
{

/** Bit i set = way i may be allocated (internal convention). */
using WayMask = std::uint32_t;

/** CAT controller: CLOS masks + core association. */
class CatController
{
  public:
    /**
     * @param num_ways LLC associativity (11 on Skylake-SP).
     * @param num_cores cores on the socket.
     * @param num_clos classes of service (16 on Skylake-SP).
     */
    CatController(unsigned num_ways, unsigned num_cores,
                  unsigned num_clos = 16);

    /** Number of LLC ways under management. */
    unsigned numWays() const { return n_ways; }

    /** Number of classes of service. */
    unsigned numClos() const { return static_cast<unsigned>(masks.size()); }

    /**
     * Program the capacity mask of a CLOS.
     * @throws FatalError if the mask is empty, non-contiguous, or has
     *         bits beyond the way count (same rejection as pqos).
     */
    void setClosMask(unsigned clos, WayMask mask);

    /** Current mask of a CLOS. */
    WayMask closMask(unsigned clos) const;

    /** Associate a core with a CLOS. */
    void assignCore(CoreId core, unsigned clos);

    /** CLOS a core is associated with (default 0). */
    unsigned closOfCore(CoreId core) const;

    /** Allocation mask in force for a core. */
    WayMask maskForCore(CoreId core) const;

    /** Reset every CLOS to the full mask and all cores to CLOS 0. */
    void resetAll();

    /** True iff the set bits of @p mask form one contiguous run. */
    static bool isContiguous(WayMask mask);

    /** Mask covering ways [lo, hi] inclusive (paper "way[lo:hi]"). */
    static WayMask makeMask(unsigned lo_way, unsigned hi_way);

    /** Full mask for @p ways ways. */
    static WayMask fullMask(unsigned ways) { return (1u << ways) - 1; }

    /** Render in the paper's hex convention (way 0 = MSB). */
    std::string paperHex(WayMask mask) const;

    /** @name Snapshot hooks: CLOS masks + core association. @{ */
    void
    saveState(Serializer &s) const
    {
        s.begin("cat");
        s.podVec(masks);
        s.podVec(core_clos);
        s.end("cat");
    }

    void
    restoreState(Deserializer &d)
    {
        d.begin("cat");
        const std::size_t n_clos = masks.size();
        const std::size_t n_cores = core_clos.size();
        d.podVec(masks);
        d.podVec(core_clos);
        if (masks.size() != n_clos || core_clos.size() != n_cores)
            throw SnapshotError("CatController: geometry mismatch");
        d.end("cat");
    }
    /** @} */

  private:
    void checkClos(unsigned clos) const;

    unsigned n_ways;
    std::vector<WayMask> masks;
    std::vector<unsigned> core_clos;
};

/** One tenant's observed signals for CLOS grouping. */
struct ClosTenant
{
    unsigned id = 0;        ///< stable tie-break (workload id)
    double miss_rate = 0.0; ///< observed LLC miss rate
    double mpa = 0.0;       ///< observed LLC misses per MLC access
};

/**
 * IOCA-style tenant grouping under CLOS exhaustion: cluster
 * @p tenants into at most @p budget groups by miss-rate/MPA
 * similarity (hardware exposes ~16 CLOS; a fleet-scale tenant count
 * cannot get one each, so tenants with similar cache behavior share
 * one).
 *
 * The tenants sort by (miss_rate, mpa, id) and the sorted sequence
 * splits at the budget-1 widest miss-rate gaps (ties broken by MPA
 * gap, then by position), so the clustering is deterministic for
 * deterministic inputs. Returns one group index in [0, budget) per
 * tenant, parallel to the input order; with budget >= tenants each
 * tenant gets its own group. @p budget must be nonzero.
 */
std::vector<unsigned> groupTenants(const std::vector<ClosTenant> &tenants,
                                   unsigned budget);

} // namespace a4

#endif // A4_RDT_CAT_HH
