/**
 * @file
 * Fixed-size, type-erased `void()` callable for the event engine.
 *
 * Replaces std::function in the event hot path: the capture is stored
 * inline (never on the heap) and over-sized captures are rejected at
 * compile time, which keeps every event-slab slot flat and
 * cache-resident. Actors that need bulky per-event state keep it in
 * their own structures and capture an index instead (see SsdArray's
 * in-flight command slots).
 */

#ifndef A4_SIM_CALLBACK_HH
#define A4_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace a4
{

/** Inline-storage callable taking no arguments and returning void. */
class InlineCallback
{
  public:
    /** Bytes of inline capture storage per callback. */
    static constexpr std::size_t kCaptureBytes = 48;

    InlineCallback() = default;
    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;
    ~InlineCallback() { destroy(); }

    /** Install @p fn, destroying any previously stored callable. */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kCaptureBytes,
                      "callback capture too large for an event slot; "
                      "keep the state in the actor and capture an index");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "callback capture over-aligned");
        destroy();
        ::new (static_cast<void *>(buf)) Fn(std::forward<F>(fn));
        invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
        if constexpr (!std::is_trivially_destructible_v<Fn>)
            drop_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        else
            drop_ = nullptr;
    }

    /** True once emplace() has installed a callable. */
    bool armed() const { return invoke_ != nullptr; }

    /** Call the stored callable (must be armed). */
    void invoke() { invoke_(buf); }

    /** Destroy the stored capture (idempotent; leaves unarmed). */
    void
    destroy()
    {
        if (drop_)
            drop_(buf);
        invoke_ = nullptr;
        drop_ = nullptr;
    }

  private:
    using ThunkFn = void (*)(void *);

    alignas(std::max_align_t) unsigned char buf[kCaptureBytes];
    ThunkFn invoke_ = nullptr;
    ThunkFn drop_ = nullptr;
};

} // namespace a4

#endif // A4_SIM_CALLBACK_HH
