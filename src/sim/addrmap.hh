/**
 * @file
 * Simulated physical address allocator.
 *
 * Buffers (rings, I/O buffers, working sets, KV stores) are carved out
 * of a single flat address space with a bump allocator. Regions are
 * page-aligned and never recycled — the space is 64-bit, and keeping
 * regions disjoint makes ownership unambiguous in the cache model.
 */

#ifndef A4_SIM_ADDRMAP_HH
#define A4_SIM_ADDRMAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace a4
{

/** Flat bump allocator for simulated physical memory regions. */
class AddressMap
{
  public:
    struct Region
    {
        std::string name;
        Addr base;
        std::uint64_t bytes;
    };

    AddressMap() : next(0x1000'0000ull) {}

    /** Allocate @p bytes (page-aligned); returns the base address. */
    Addr
    alloc(std::uint64_t bytes, const std::string &name = "")
    {
        if (bytes == 0)
            fatal("AddressMap: zero-byte allocation for '" + name + "'");
        constexpr std::uint64_t page = 4096;
        Addr base = next;
        next += (bytes + page - 1) & ~(page - 1);
        regions_.push_back(Region{name, base, bytes});
        return base;
    }

    const std::vector<Region> &regions() const { return regions_; }

  private:
    Addr next;
    std::vector<Region> regions_;
};

} // namespace a4

#endif // A4_SIM_ADDRMAP_HH
