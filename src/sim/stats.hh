/**
 * @file
 * Statistics primitives: latency distributions and windowed rates.
 */

#ifndef A4_SIM_STATS_HH
#define A4_SIM_STATS_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace a4
{

/**
 * Latency distribution with reservoir sampling for percentiles.
 *
 * Records arbitrary many samples in O(1) memory. Exact count/mean/max
 * are maintained; percentiles are estimated from a uniform reservoir
 * of up to kReservoir samples, which is ample for p99 at the sample
 * volumes the experiments produce.
 */
class LatencyStat
{
  public:
    LatencyStat();

    /** Record one sample (nanoseconds, but unit-agnostic). */
    void record(double v);

    /** Merge another distribution into this one (for multi-core sums). */
    void merge(const LatencyStat &other);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    /**
     * Percentile estimate from the reservoir.
     * @param p in [0, 100], e.g. 99.0 for the p99 tail.
     */
    double percentile(double p) const;

    /**
     * @name Snapshot hooks.
     * The reservoir Rng is part of the state: reset() deliberately
     * does not reseed it, so the sample count recorded before a
     * window reset still determines which later samples the
     * reservoir keeps. Restored==cold identity therefore needs the
     * stream position, not just the aggregates.
     * @{
     */
    void
    saveState(Serializer &s) const
    {
        s.u64(n);
        s.f64(sum);
        s.f64(lo);
        s.f64(hi);
        s.podVec(reservoir);
        rng.saveState(s);
    }

    void
    restoreState(Deserializer &d)
    {
        n = d.u64();
        sum = d.f64();
        lo = d.f64();
        hi = d.f64();
        d.podVec(reservoir);
        rng.restoreState(d);
    }
    /** @} */

  private:
    static constexpr std::size_t kReservoir = 8192;

    std::uint64_t n;
    double sum;
    double lo;
    double hi;
    std::vector<double> reservoir;
    Rng rng;
};

/**
 * Monotonic counter with snapshot-delta support.
 *
 * The simulator increments the raw value; monitors call delta() against
 * a caller-held previous snapshot to obtain per-interval rates, exactly
 * as performance-counter reads work on real hardware.
 */
class SnapshotCounter
{
  public:
    SnapshotCounter() : value_(0) {}

    void add(std::uint64_t d) { value_ += d; }
    void inc() { ++value_; }
    std::uint64_t value() const { return value_; }

    /** Difference against @p prev, updating prev to the current value. */
    std::uint64_t
    delta(std::uint64_t &prev) const
    {
        std::uint64_t d = value_ - prev;
        prev = value_;
        return d;
    }

    /** @name Snapshot hooks. @{ */
    void saveState(Serializer &s) const { s.u64(value_); }
    void restoreState(Deserializer &d) { value_ = d.u64(); }
    /** @} */

  private:
    std::uint64_t value_;
};

/** Ratio helper tolerating a zero denominator. */
inline double
ratio(double num, double den)
{
    return den > 0.0 ? num / den : 0.0;
}

} // namespace a4

#endif // A4_SIM_STATS_HH
