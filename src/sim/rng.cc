#include "sim/rng.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "sim/log.hh"

namespace a4
{

std::uint64_t
envSeed()
{
    const char *env = std::getenv("A4_SEED");
    if (env == nullptr)
        return 0;
    // Pure digits only, then an errno-checked parse: strtoull both
    // skips leading whitespace before a '-' (which it silently wraps
    // around) and saturates on overflow — either would smuggle a
    // garbage seed past the "rejected, never half-parsed" contract.
    const bool digits_only =
        *env != '\0' && env[std::strspn(env, "0123456789")] == '\0';
    if (digits_only) {
        errno = 0;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0')
            return static_cast<std::uint64_t>(v);
    }
    static std::string warned;
    warnOncePerValue(warned, env,
                     "warning: A4_SEED: ignoring malformed value '%s' "
                     "(want an unsigned integer; 0 = default streams)\n");
    return 0;
}

} // namespace a4
