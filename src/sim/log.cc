#include "sim/log.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace a4
{

namespace
{
bool quiet_mode = false;
} // namespace

std::string
sformat(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
warn(const std::string &msg)
{
    if (!quiet_mode)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quiet_mode)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quiet_mode = quiet;
}

void
warnOncePerValue(std::string &warned, const char *value,
                 const char *format)
{
    if (warned == value)
        return;
    warned = value;
    std::fprintf(stderr, format, value);
}

} // namespace a4
