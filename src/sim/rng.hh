/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small xoshiro256** generator seeded via splitmix64. Every stochastic
 * component of the simulator owns its own Rng instance so that runs are
 * reproducible regardless of actor interleaving.
 */

#ifndef A4_SIM_RNG_HH
#define A4_SIM_RNG_HH

#include <cmath>
#include <cstdint>

#include "sim/serialize.hh"

namespace a4
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 expansion of the seed into the full state.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u >= 1.0)
            u = 0.999999999;
        return -mean * std::log(1.0 - u);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** @name Snapshot hooks: the four state words verbatim. @{ */
    void
    saveState(Serializer &s) const
    {
        for (std::uint64_t word : state)
            s.u64(word);
    }

    void
    restoreState(Deserializer &d)
    {
        for (auto &word : state)
            word = d.u64();
    }
    /** @} */

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

/**
 * $A4_SEED as a global RNG-stream selector: 0 when unset (or 0 — the
 * default streams), otherwise the parsed value. Malformed values are
 * rejected whole with one warning per offending value, like every
 * other A4_* knob. Read at each workload/device construction, so
 * tests can change the environment between runs.
 */
std::uint64_t envSeed();

/**
 * Effective seed for a component whose built-in stream is @p base.
 *
 * Identity when $A4_SEED is unset — runs without the knob are
 * bit-identical to builds that predate it. With a seed, the pair
 * (base, seed) is mixed splitmix64-style so every component still
 * gets its own decorrelated stream and equal seeds reproduce equal
 * runs. Every Rng constructed by a workload or device model must go
 * through this helper; raw `Rng(cfg.seed)` would pin the stream and
 * silently ignore the knob.
 */
inline std::uint64_t
mixSeed(std::uint64_t base)
{
    const std::uint64_t s = envSeed();
    if (s == 0)
        return base;
    std::uint64_t z = base + 0x9E3779B97F4A7C15ull * s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/**
 * Derived seed for replica @p idx of a replicated spec entry whose
 * own stream is @p base (the `replicate=` expansion).
 *
 * Replica 0 keeps the base stream — `replicate = 1` stays
 * bit-identical to the unreplicated entry — and each further replica
 * mixes (base, idx) splitmix64-style into its own decorrelated
 * stream. The derived value travels through the expanded spec's
 * ordinary `seed` knob, so mixSeed()/$A4_SEED still compose on top.
 */
inline std::uint64_t
tenantSeed(std::uint64_t base, std::uint64_t idx)
{
    if (idx == 0)
        return base;
    std::uint64_t z = base + 0x9E3779B97F4A7C15ull * idx;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace a4

#endif // A4_SIM_RNG_HH
