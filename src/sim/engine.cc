#include "sim/engine.hh"

#include "sim/log.hh"

namespace a4
{

void
Engine::growSlab()
{
    auto chunk = std::make_unique<Slot[]>(kChunkSlots);
    // Link the fresh chunk into the free list in index order.
    for (std::uint32_t i = 0; i < kChunkSlots; ++i) {
        chunk[i].next_free =
            i + 1 < kChunkSlots ? &chunk[i + 1] : free_head;
    }
    free_head = &chunk[0];
    chunks.push_back(std::move(chunk));
    slot_count += kChunkSlots;
}

Tick
Engine::checkWhen(Tick when)
{
    if (when < now_) [[unlikely]] {
        ++past_events;
#ifndef NDEBUG
        panic(sformat("Engine: event scheduled %llu ticks in the past "
                      "(when=%llu, now=%llu)",
                      static_cast<unsigned long long>(now_ - when),
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(now_)));
#endif
        return now_;
    }
    return when;
}

void
Engine::runUntil(Tick when)
{
    while (has_front && whenOf(front) <= when) {
        const QueuedEvent ev = front;
        // Refill the front cache from the heap before running the
        // callback; anything it schedules re-enters through enqueue().
        if (!queue.empty()) {
            front = queue.top();
            queue.pop();
        } else {
            has_front = false;
        }
        Slot &s = *ev.slot;
        if (s.gen != ev.gen)
            continue; // cancelled or re-initialised since queuing
        now_ = whenOf(ev);
        ++fired;
        // Invoke in place: chunked storage keeps the capture's address
        // stable even if the callback grows the slab by scheduling.
        s.cb.invoke();
        // The generation re-check makes Recurring::reset() (or
        // re-init()) from inside the slot's own callback safe: the
        // callback already freed the slot, so freeing it again here
        // would corrupt the free list.
        if (!s.sticky && s.gen == ev.gen)
            freeSlot(s);
    }
    if (now_ < when)
        now_ = when;
}

} // namespace a4
