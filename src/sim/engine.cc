#include "sim/engine.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/log.hh"
#include "sim/serialize.hh"

namespace a4
{

Engine::Engine(QueueMode mode) : mode_(mode)
{
    if (mode_ == QueueMode::Wheel)
        wheel_ = std::make_unique<Wheel>();
}

QueueMode
Engine::queueModeFromEnv()
{
    const char *env = std::getenv("A4_ENGINE_QUEUE");
    if (env == nullptr || *env == '\0' ||
        std::strcmp(env, "heap") == 0)
        return QueueMode::Heap;
    if (std::strcmp(env, "wheel") == 0)
        return QueueMode::Wheel;
    static std::string warned;
    warnOncePerValue(warned, env,
                     "warning: A4_ENGINE_QUEUE: ignoring malformed "
                     "value '%s' (want heap or wheel)\n");
    return QueueMode::Heap;
}

// --------------------------------------------------------------------
// Timing wheel (see the structure note in engine.hh).

void
Engine::wheelPush(const QueuedEvent &ev)
{
    Wheel &w = *wheel_;
    const Tick t = whenOf(ev);
    ++w.count;
    if (t < w.base) {
        w.under.push_back(ev);
        std::push_heap(w.under.begin(), w.under.end(), Later{});
        return;
    }
    const std::uint64_t diff = t ^ w.base;
    const unsigned level =
        diff == 0 ? 0u
                  : static_cast<unsigned>(63 - __builtin_clzll(diff)) /
                        8u;
    const unsigned slot = (t >> (8 * level)) & 0xFF;
    auto &v = w.slots[level][slot];
    v.push_back(ev);
    std::push_heap(v.begin(), v.end(), Later{});
}

bool
Engine::wheelPop(QueuedEvent &out)
{
    Wheel &w = *wheel_;
    if (w.count == 0)
        return false;

    auto extract = [&](std::vector<QueuedEvent> &v) {
        std::pop_heap(v.begin(), v.end(), Later{});
        out = v.back();
        v.pop_back();
        --w.count;
    };

    // Under-floor strays first: their ticks are strictly below every
    // wheel tick, so when present the global minimum is here.
    if (!w.under.empty()) {
        extract(w.under);
        return true;
    }

    for (;;) {
        // Level 0: events share all upper bytes with the floor, so
        // the first occupied slot at or past byte0(base) holds the
        // minimum tick (higher levels hold strictly larger ticks).
        for (unsigned s = w.base & 0xFF; s < Wheel::kSlots; ++s) {
            auto &v = w.slots[0][s];
            if (v.empty())
                continue;
            extract(v);
            // Remaining level-0 events sit in this slot or later
            // ones, so the floor may advance to the extracted tick
            // (its upper bytes match the old floor's).
            w.base = whenOf(out);
            return true;
        }
        // Cascade: the minimum now lives in the first occupied slot
        // past byte_l(base) at the lowest occupied level. Advance the
        // floor to that slot's own floor (lower bytes zeroed) and
        // re-insert its events; each lands at a level below l.
        bool cascaded = false;
        for (unsigned l = 1; l < Wheel::kLevels && !cascaded; ++l) {
            const unsigned from =
                static_cast<unsigned>((w.base >> (8 * l)) & 0xFF) + 1;
            for (unsigned s = from; s < Wheel::kSlots; ++s) {
                auto &v = w.slots[l][s];
                if (v.empty())
                    continue;
                const Tick upper =
                    l + 1 < 8 ? w.base &
                                    ~((Tick(1) << (8 * (l + 1))) - 1)
                              : 0;
                w.base = upper | (Tick(s) << (8 * l));
                std::vector<QueuedEvent> moved;
                moved.swap(v);
                w.count -= moved.size();
                for (const QueuedEvent &mv : moved)
                    wheelPush(mv);
                cascaded = true;
                break;
            }
        }
        if (!cascaded)
            panic("Engine: timing wheel lost a pending event");
    }
}

void
Engine::growSlab()
{
    auto chunk = std::make_unique<Slot[]>(kChunkSlots);
    // Link the fresh chunk into the free list in index order.
    for (std::uint32_t i = 0; i < kChunkSlots; ++i) {
        chunk[i].next_free =
            i + 1 < kChunkSlots ? &chunk[i + 1] : free_head;
    }
    free_head = &chunk[0];
    chunks.push_back(std::move(chunk));
    slot_count += kChunkSlots;
}

Tick
Engine::checkWhen(Tick when)
{
    if (when < now_) [[unlikely]] {
        ++past_events;
#ifndef NDEBUG
        panic(sformat("Engine: event scheduled %llu ticks in the past "
                      "(when=%llu, now=%llu)",
                      static_cast<unsigned long long>(now_ - when),
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(now_)));
#endif
        return now_;
    }
    return when;
}

void
Engine::runUntil(Tick when)
{
    while (has_front && whenOf(front) <= when) {
        const QueuedEvent ev = front;
        // Refill the front cache from the container before running
        // the callback; anything it schedules re-enters through
        // enqueue().
        if (wheel_) {
            has_front = wheelPop(front);
        } else if (!queue.empty()) {
            front = queue.top();
            queue.pop();
        } else {
            has_front = false;
        }
        Slot &s = *ev.slot;
        if (s.gen != ev.gen)
            continue; // cancelled or re-initialised since queuing
        now_ = whenOf(ev);
        ++fired;
        // Invoke in place: chunked storage keeps the capture's address
        // stable even if the callback grows the slab by scheduling.
        s.cb.invoke();
        // The generation re-check makes Recurring::reset() (or
        // re-init()) from inside the slot's own callback safe: the
        // callback already freed the slot, so freeing it again here
        // would corrupt the free list.
        if (!s.sticky && s.gen == ev.gen)
            freeSlot(s);
    }
    if (now_ < when)
        now_ = when;
}

// --------------------------------------------------------------------
// Snapshot protocol (see the note in engine.hh).

void
Engine::saveBegin(Serializer &s)
{
    if (in_save_ || in_restore_)
        throw SnapshotError("Engine: nested snapshot operation");

    s.begin("engine");
    s.u64(now_);
    s.u64(next_seq);
    s.u64(fired);
    s.u64(past_events);
    s.u64(batch_firings);
    s.u64(batch_expanded);

    // Index every live queued event by slot. std::priority_queue
    // hides its container, but a derived local class may name the
    // protected member.
    using Heap = std::priority_queue<QueuedEvent,
                                     std::vector<QueuedEvent>, Later>;
    struct Access : Heap
    {
        static const std::vector<QueuedEvent> &
        container(const Heap &q)
        {
            return q.*&Access::c;
        }
    };

    save_index_.clear();
    save_unclaimed_ = 0;
    auto note = [&](const QueuedEvent &ev) {
        if (ev.slot->gen != ev.gen)
            return; // cancelled or re-initialised: could never fire
        if (!ev.slot->sticky)
            throw SnapshotError(
                "Engine: live one-shot event (raw schedule()) cannot "
                "be snapshotted");
        save_index_[ev.slot].push_back(ev.key);
        ++save_unclaimed_;
    };
    if (has_front)
        note(front);
    if (wheel_) {
        for (const QueuedEvent &ev : wheel_->under)
            note(ev);
        for (const auto &level : wheel_->slots)
            for (const auto &slot : level)
                for (const QueuedEvent &ev : slot)
                    note(ev);
    } else {
        for (const QueuedEvent &ev : Access::container(queue))
            note(ev);
    }
    for (auto &[slot, keys] : save_index_)
        std::sort(keys.begin(), keys.end());

    s.u64(save_unclaimed_);
    in_save_ = true;
}

void
Engine::saveEnd(Serializer &s)
{
    if (!in_save_)
        throw SnapshotError("Engine::saveEnd without saveBegin");
    in_save_ = false;
    const std::size_t unclaimed = save_unclaimed_;
    save_index_.clear();
    save_unclaimed_ = 0;
    if (unclaimed != 0)
        throw SnapshotError(sformat(
            "Engine: %zu live events were not claimed by any "
            "component's save hook", unclaimed));
    s.end("engine");
}

void
Engine::restoreBegin(Deserializer &d)
{
    if (in_save_ || in_restore_)
        throw SnapshotError("Engine: nested snapshot operation");
    if (pending() != 0)
        throw SnapshotError(sformat(
            "Engine: restore into a non-empty queue (%zu pending)",
            pending()));

    d.begin("engine");
    now_ = d.u64();
    next_seq = d.u64();
    fired = d.u64();
    past_events = d.u64();
    batch_firings = d.u64();
    batch_expanded = d.u64();
    restore_expected_ = d.u64();
    in_restore_ = true;
}

void
Engine::restoreEnd(Deserializer &d)
{
    if (!in_restore_)
        throw SnapshotError("Engine::restoreEnd without restoreBegin");
    in_restore_ = false;
    const std::uint64_t missing = restore_expected_;
    restore_expected_ = 0;
    if (missing != 0)
        throw SnapshotError(sformat(
            "Engine: %llu saved events were never re-armed",
            static_cast<unsigned long long>(missing)));
    d.end("engine");
}

std::vector<unsigned __int128>
Engine::claimQueuedKeys(const Slot *slot)
{
    if (!in_save_)
        throw SnapshotError(
            "Engine: saveQueued outside a saveBegin/saveEnd bracket");
    auto it = save_index_.find(slot);
    if (it == save_index_.end())
        return {};
    std::vector<unsigned __int128> keys = std::move(it->second);
    save_index_.erase(it);
    save_unclaimed_ -= keys.size();
    return keys;
}

void
Engine::armRestoredKey(unsigned __int128 key, Slot *slot)
{
    if (!in_restore_)
        throw SnapshotError(
            "Engine: restoreQueued outside a restoreBegin/restoreEnd "
            "bracket");
    if (restore_expected_ == 0)
        throw SnapshotError(
            "Engine: more keys re-armed than the snapshot recorded");
    if (static_cast<std::uint64_t>(key) >= next_seq)
        throw SnapshotError(
            "Engine: restored key's sequence is past the saved "
            "next_seq");
    --restore_expected_;
    enqueue(QueuedEvent{key, slot, slot->gen});
}

void
Engine::Recurring::saveQueued(Serializer &s) const
{
    s.boolean(initialized());
    if (!initialized())
        return;
    const auto keys = eng_->claimQueuedKeys(slot_);
    s.u64(keys.size());
    for (unsigned __int128 key : keys)
        s.u128(key);
}

void
Engine::Recurring::restoreQueued(Deserializer &d)
{
    const bool was_init = d.boolean();
    if (!was_init)
        return; // never initialized on the saved side: nothing queued
    if (!initialized())
        throw SnapshotError(
            "Recurring: restoring queued firings into an "
            "uninitialized slot");
    const std::uint64_t count = d.u64();
    for (std::uint64_t i = 0; i < count; ++i)
        eng_->armRestoredKey(d.u128(), slot_);
}

void
Engine::Batch::saveState(Serializer &s) const
{
    s.boolean(active_);
    s.u64(period_);
    s.u64(last_);
    ev_.saveQueued(s);
}

void
Engine::Batch::restoreState(Deserializer &d)
{
    active_ = d.boolean();
    period_ = d.u64();
    last_ = d.u64();
    ev_.restoreQueued(d);
}

} // namespace a4
