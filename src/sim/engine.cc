#include "sim/engine.hh"

#include "sim/log.hh"

namespace a4
{

void
Engine::schedule(Tick delay, Callback fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

void
Engine::scheduleAt(Tick when, Callback fn)
{
    if (when < now_)
        when = now_;
    queue.push(Event{when, next_seq++, std::move(fn)});
}

void
Engine::runUntil(Tick when)
{
    while (!queue.empty() && queue.top().when <= when) {
        // Copy out before pop so the callback may schedule freely.
        Event ev = queue.top();
        queue.pop();
        now_ = ev.when;
        ++fired;
        ev.fn();
    }
    if (now_ < when)
        now_ = when;
}

} // namespace a4
