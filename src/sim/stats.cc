#include "sim/stats.hh"

#include <algorithm>

namespace a4
{

LatencyStat::LatencyStat()
    : n(0), sum(0.0), lo(0.0), hi(0.0), rng(0xA4A4A4A4ull)
{
    reservoir.reserve(1024);
}

void
LatencyStat::record(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++n;
    sum += v;

    if (reservoir.size() < kReservoir) {
        reservoir.push_back(v);
    } else {
        // Vitter's algorithm R: keep each sample with prob k/n.
        std::uint64_t slot = rng.below(n);
        if (slot < kReservoir)
            reservoir[slot] = v;
    }
}

void
LatencyStat::merge(const LatencyStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    n += other.n;
    sum += other.sum;
    for (double v : other.reservoir) {
        if (reservoir.size() < kReservoir)
            reservoir.push_back(v);
        else if (rng.chance(0.5))
            reservoir[rng.below(reservoir.size())] = v;
    }
}

void
LatencyStat::reset()
{
    n = 0;
    sum = 0.0;
    lo = hi = 0.0;
    reservoir.clear();
}

double
LatencyStat::percentile(double p) const
{
    if (reservoir.empty())
        return 0.0;
    std::vector<double> sorted(reservoir);
    std::sort(sorted.begin(), sorted.end());
    double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    auto idx = static_cast<std::size_t>(rank);
    if (idx + 1 >= sorted.size())
        return sorted.back();
    double frac = rank - static_cast<double>(idx);
    return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

} // namespace a4
