/**
 * @file
 * Versioned snapshot contract: a tagged binary stream codec.
 *
 * Every value written by Serializer carries a one-byte type tag, and
 * sections open/close with length-prefixed names, so a Deserializer
 * that drifts out of sync with the writer (schema change, truncated
 * image, bit rot) fails loudly with a SnapshotError instead of
 * silently misreading state. SnapshotError is the *only* failure mode
 * of the layer — callers (the checkpoint store) catch it and fall
 * back to a cold run, which is always correct because snapshots are a
 * pure wall-clock optimisation.
 *
 * Doubles round-trip through their IEEE-754 bit pattern and integers
 * through fixed-width little-endian bytes, so a restore reproduces
 * the saved state bit-exactly — the property the byte-identity
 * machinery (hex-float Records, observation barrier) then extends to
 * whole-simulation restored==cold equality.
 *
 * Format versioning: bump kSnapshotFormatVersion whenever any
 * saveState/restoreState pair changes shape. The checkpoint store
 * keys images by this version (plus a build tag), so stale images
 * from older binaries are never even opened by a newer one.
 */

#ifndef A4_SIM_SERIALIZE_HH
#define A4_SIM_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace a4
{

/** Bump whenever any save/restore pair changes its stream shape. */
constexpr std::uint32_t kSnapshotFormatVersion = 2;

/**
 * Raised on any snapshot mismatch: tag drift, truncation, section
 * name mismatch, or a component refusing to snapshot its state
 * (e.g. an in-flight I/O completion with no serializable identity).
 * Always recoverable by running cold.
 */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Writer half of the tagged binary snapshot stream. */
class Serializer
{
  public:
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f64(double v);
    void boolean(bool v);
    void str(const std::string &v);
    /** 128-bit event key, written as (hi, lo) 64-bit halves. */
    void u128(unsigned __int128 v);

    /** Open/close a named section; names are checked on read. */
    void begin(const std::string &name);
    void end(const std::string &name);

    /**
     * Vector of trivially-copyable scalars as one length-prefixed
     * blob (used for the multi-megabyte cache tag/LRU arrays).
     */
    template <typename T>
    void
    podVec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        blobHeader(sizeof(T), v.size());
        raw(v.data(), v.size() * sizeof(T));
    }

    const std::string &data() const { return buf_; }

  private:
    void tag(std::uint8_t t);
    void raw(const void *p, std::size_t n);
    void blobHeader(std::size_t elem, std::size_t count);

    std::string buf_;
};

/** Reader half; every accessor checks the written type tag. */
class Deserializer
{
  public:
    explicit Deserializer(std::string data) : buf_(std::move(data)) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    bool boolean();
    std::string str();
    unsigned __int128 u128();

    void begin(const std::string &name);
    void end(const std::string &name);

    /** Read back a podVec(); the stored element size must match. */
    template <typename T>
    void
    podVec(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::size_t count = blobHeader(sizeof(T));
        v.resize(count);
        raw(v.data(), count * sizeof(T));
    }

    /** True once every written byte has been consumed. */
    bool atEnd() const { return pos_ == buf_.size(); }

    /** Throw unless the whole stream was consumed. */
    void expectEnd() const;

  private:
    void need(std::size_t n) const;
    std::uint8_t tagByte(std::uint8_t want, const char *what);
    void raw(void *p, std::size_t n);
    std::size_t blobHeader(std::size_t elem);

    std::string buf_;
    std::size_t pos_ = 0;
};

/**
 * Save/restore hooks for a stateful component. restoreState() runs on
 * a freshly constructed object built from the *same* configuration as
 * the saved one; it only has to reinstate mutable run-time state (and
 * re-arm its Engine::Recurring events at their exact saved keys).
 */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;

    virtual void saveState(Serializer &s) const = 0;
    virtual void restoreState(Deserializer &d) = 0;
};

} // namespace a4

#endif // A4_SIM_SERIALIZE_HH
