/**
 * @file
 * Fundamental scalar types and unit constants shared by every module.
 */

#ifndef A4_SIM_TYPES_HH
#define A4_SIM_TYPES_HH

#include <cstdint>

namespace a4
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Dense identifier of a registered workload (0 is reserved: "none"). */
using WorkloadId = std::uint16_t;

/** Dense identifier of a CPU core. */
using CoreId = std::uint16_t;

/** Identifier of a PCIe root port (one per attached I/O device). */
using PortId = std::uint16_t;

/** Workload id meaning "no workload / unattributed". */
inline constexpr WorkloadId kNoWorkload = 0;

/** @name Time units (all Ticks are nanoseconds). @{ */
inline constexpr Tick kNsec = 1;
inline constexpr Tick kUsec = 1000;
inline constexpr Tick kMsec = 1000 * kUsec;
inline constexpr Tick kSec = 1000 * kMsec;
/** @} */

/** @name Capacity units. @{ */
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;
/** @} */

/** Cache line geometry (fixed, as on all modeled CPUs). */
inline constexpr unsigned kLineShift = 6;
inline constexpr unsigned kLineBytes = 1u << kLineShift;

/** Align @p bytes up to a whole number of cache lines. */
constexpr std::uint64_t
linesIn(std::uint64_t bytes)
{
    return (bytes + kLineBytes - 1) >> kLineShift;
}

/** Line-granular address (byte address with the offset stripped). */
constexpr Addr
lineOf(Addr byte_addr)
{
    return byte_addr >> kLineShift;
}

} // namespace a4

#endif // A4_SIM_TYPES_HH
