#include "sim/serialize.hh"

#include "sim/log.hh"

namespace a4
{

namespace
{

// One byte per value so reader/writer drift is caught at the exact
// point of divergence, not megabytes later.
enum : std::uint8_t {
    kTagU8 = 0x01,
    kTagU32 = 0x02,
    kTagU64 = 0x03,
    kTagI64 = 0x04,
    kTagF64 = 0x05,
    kTagBool = 0x06,
    kTagStr = 0x07,
    kTagU128 = 0x08,
    kTagBlob = 0x09,
    kTagBegin = 0x0A,
    kTagEnd = 0x0B,
};

template <typename T>
void
putLe(std::string &buf, T v)
{
    static_assert(std::is_unsigned_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

} // namespace

// --------------------------------------------------------------------
// Serializer

void
Serializer::tag(std::uint8_t t)
{
    buf_.push_back(static_cast<char>(t));
}

void
Serializer::raw(const void *p, std::size_t n)
{
    buf_.append(static_cast<const char *>(p), n);
}

void
Serializer::u8(std::uint8_t v)
{
    tag(kTagU8);
    putLe(buf_, v);
}

void
Serializer::u32(std::uint32_t v)
{
    tag(kTagU32);
    putLe(buf_, v);
}

void
Serializer::u64(std::uint64_t v)
{
    tag(kTagU64);
    putLe(buf_, v);
}

void
Serializer::i64(std::int64_t v)
{
    tag(kTagI64);
    putLe(buf_, static_cast<std::uint64_t>(v));
}

void
Serializer::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    tag(kTagF64);
    putLe(buf_, bits);
}

void
Serializer::boolean(bool v)
{
    tag(kTagBool);
    buf_.push_back(v ? '\1' : '\0');
}

void
Serializer::str(const std::string &v)
{
    tag(kTagStr);
    putLe(buf_, static_cast<std::uint64_t>(v.size()));
    buf_.append(v);
}

void
Serializer::u128(unsigned __int128 v)
{
    tag(kTagU128);
    putLe(buf_, static_cast<std::uint64_t>(v >> 64));
    putLe(buf_, static_cast<std::uint64_t>(v));
}

void
Serializer::begin(const std::string &name)
{
    tag(kTagBegin);
    putLe(buf_, static_cast<std::uint32_t>(name.size()));
    buf_.append(name);
}

void
Serializer::end(const std::string &name)
{
    tag(kTagEnd);
    putLe(buf_, static_cast<std::uint32_t>(name.size()));
    buf_.append(name);
}

void
Serializer::blobHeader(std::size_t elem, std::size_t count)
{
    tag(kTagBlob);
    putLe(buf_, static_cast<std::uint32_t>(elem));
    putLe(buf_, static_cast<std::uint64_t>(count));
}

// --------------------------------------------------------------------
// Deserializer

void
Deserializer::need(std::size_t n) const
{
    if (buf_.size() - pos_ < n)
        throw SnapshotError(sformat(
            "snapshot truncated: need %zu bytes at offset %zu of %zu",
            n, pos_, buf_.size()));
}

std::uint8_t
Deserializer::tagByte(std::uint8_t want, const char *what)
{
    need(1);
    const auto got = static_cast<std::uint8_t>(buf_[pos_]);
    if (got != want)
        throw SnapshotError(sformat(
            "snapshot tag mismatch at offset %zu: want %s (0x%02x), "
            "got 0x%02x", pos_, what, want, got));
    ++pos_;
    return got;
}

void
Deserializer::raw(void *p, std::size_t n)
{
    need(n);
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
}

std::uint8_t
Deserializer::u8()
{
    tagByte(kTagU8, "u8");
    std::uint8_t v = 0;
    raw(&v, sizeof(v));
    return v;
}

std::uint32_t
Deserializer::u32()
{
    tagByte(kTagU32, "u32");
    need(4);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
Deserializer::u64()
{
    tagByte(kTagU64, "u64");
    need(8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

std::int64_t
Deserializer::i64()
{
    tagByte(kTagI64, "i64");
    need(8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return static_cast<std::int64_t>(v);
}

double
Deserializer::f64()
{
    tagByte(kTagF64, "f64");
    need(8);
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < 8; ++i)
        bits |= static_cast<std::uint64_t>(
                    static_cast<std::uint8_t>(buf_[pos_ + i]))
                << (8 * i);
    pos_ += 8;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
Deserializer::boolean()
{
    tagByte(kTagBool, "bool");
    need(1);
    const char c = buf_[pos_++];
    if (c != '\0' && c != '\1')
        throw SnapshotError(sformat(
            "snapshot bool with value 0x%02x at offset %zu",
            static_cast<unsigned>(static_cast<std::uint8_t>(c)),
            pos_ - 1));
    return c == '\1';
}

std::string
Deserializer::str()
{
    tagByte(kTagStr, "str");
    need(8);
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < 8; ++i)
        n |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    need(n);
    std::string v(buf_.data() + pos_, n);
    pos_ += n;
    return v;
}

unsigned __int128
Deserializer::u128()
{
    tagByte(kTagU128, "u128");
    need(16);
    std::uint64_t hi = 0, lo = 0;
    for (std::size_t i = 0; i < 8; ++i)
        hi |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(buf_[pos_ + i]))
              << (8 * i);
    for (std::size_t i = 0; i < 8; ++i)
        lo |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(buf_[pos_ + 8 + i]))
              << (8 * i);
    pos_ += 16;
    return (static_cast<unsigned __int128>(hi) << 64) | lo;
}

void
Deserializer::begin(const std::string &name)
{
    tagByte(kTagBegin, "section-begin");
    need(4);
    std::uint32_t n = 0;
    for (std::size_t i = 0; i < 4; ++i)
        n |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    need(n);
    const std::string got(buf_.data() + pos_, n);
    pos_ += n;
    if (got != name)
        throw SnapshotError(sformat(
            "snapshot section mismatch: want begin '%s', got '%s'",
            name.c_str(), got.c_str()));
}

void
Deserializer::end(const std::string &name)
{
    tagByte(kTagEnd, "section-end");
    need(4);
    std::uint32_t n = 0;
    for (std::size_t i = 0; i < 4; ++i)
        n |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    need(n);
    const std::string got(buf_.data() + pos_, n);
    pos_ += n;
    if (got != name)
        throw SnapshotError(sformat(
            "snapshot section mismatch: want end '%s', got '%s'",
            name.c_str(), got.c_str()));
}

std::size_t
Deserializer::blobHeader(std::size_t elem)
{
    tagByte(kTagBlob, "blob");
    need(4);
    std::uint32_t e = 0;
    for (std::size_t i = 0; i < 4; ++i)
        e |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(buf_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    if (e != elem)
        throw SnapshotError(sformat(
            "snapshot blob element size mismatch: want %zu, got %u",
            elem, e));
    need(8);
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < 8; ++i)
        count |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(buf_[pos_ + i]))
                 << (8 * i);
    pos_ += 8;
    return count;
}

void
Deserializer::expectEnd() const
{
    if (!atEnd())
        throw SnapshotError(sformat(
            "snapshot has %zu trailing bytes after the final section",
            buf_.size() - pos_));
}

} // namespace a4
