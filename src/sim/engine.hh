/**
 * @file
 * Discrete-event simulation engine.
 *
 * A single-threaded event queue keyed by (tick, sequence). Actors
 * (device models, workload cores, the A4 daemon) schedule closures;
 * ties are broken by insertion order so runs are fully deterministic.
 */

#ifndef A4_SIM_ENGINE_HH
#define A4_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace a4
{

/** Deterministic single-threaded discrete-event engine. */
class Engine
{
  public:
    using Callback = std::function<void()>;

    Engine() : now_(0), next_seq(0) {}

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to fire @p delay ticks from now. */
    void schedule(Tick delay, Callback fn);

    /** Schedule @p fn at absolute tick @p when (clamped to now). */
    void scheduleAt(Tick when, Callback fn);

    /** Run events until the queue is empty or @p when is reached.
     *  Time is advanced to @p when even if the queue drains early. */
    void runUntil(Tick when);

    /** Run for @p duration ticks from the current time. */
    void runFor(Tick duration) { runUntil(now_ + duration); }

    /** Number of events executed so far (for microbenchmarks). */
    std::uint64_t eventsFired() const { return fired; }

    /** Pending event count. */
    std::size_t pending() const { return queue.size(); }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue;
    Tick now_;
    std::uint64_t next_seq;
    std::uint64_t fired = 0;
};

} // namespace a4

#endif // A4_SIM_ENGINE_HH
