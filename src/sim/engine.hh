/**
 * @file
 * Discrete-event simulation engine.
 *
 * A single-threaded event queue keyed by (tick, sequence). Actors
 * (device models, workload cores, the A4 daemon) schedule callables;
 * ties are broken by insertion order so runs are fully deterministic.
 *
 * Hot-path design: events live in a slab of fixed-size slots (inline
 * callback storage, no per-event heap allocation) carved out of
 * stable chunks, and the priority queue orders slim POD entries whose
 * (tick, sequence) ordering is packed into one 128-bit key so heap
 * sifts cost a single compare. Self-rescheduling actors use
 * Engine::Recurring, which installs its callback once and re-arms the
 * same slot, so steady-state actors never re-construct closures.
 * Slots carry a generation counter: cancelling or re-initialising an
 * event invalidates its queued firings without touching the queue.
 * Actors whose event rate would dominate the queue batch themselves
 * through Engine::Batch — one firing per interval that expands into
 * many timestamped sub-events (see the NIC's burst arrival path).
 *
 * Two pending-event containers implement the same (tick, seq) total
 * order: the default binary heap and a hierarchical timing wheel
 * (A4_ENGINE_QUEUE=wheel) that wins once tens of thousands of events
 * are pending (fleet-scale testbeds). Both pop events in strictly
 * ascending key order, so every run is byte-identical across the two.
 */

#ifndef A4_SIM_ENGINE_HH
#define A4_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace a4
{

class Serializer;
class Deserializer;

/**
 * Pending-event container selection. Heap is the classic binary
 * heap; Wheel is a hierarchical timing wheel (calendar queue) whose
 * insert cost is O(1) instead of O(log n) — it pays off once tens of
 * thousands of events are pending. Both honor the exact (tick, seq)
 * ordering contract, so results are byte-identical by construction.
 */
enum class QueueMode { Heap, Wheel };

/** Deterministic single-threaded discrete-event engine. */
class Engine
{
  public:
    Engine() : Engine(queueModeFromEnv()) {}
    explicit Engine(QueueMode mode);
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Which pending-event container this engine runs on. */
    QueueMode queueMode() const { return mode_; }

    /** $A4_ENGINE_QUEUE (heap|wheel); malformed values warn once and
     *  fall back to the heap, like every other A4_* knob. */
    static QueueMode queueModeFromEnv();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to fire @p delay ticks from now. */
    template <typename F>
    void
    schedule(Tick delay, F &&fn)
    {
        push(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Schedule @p fn at absolute tick @p when.
     *
     * Scheduling into the past is an actor bug: it panics in debug
     * builds; release builds clamp to now() and count the occurrence
     * (see pastEvents()) so the slip cannot hide as reordering.
     */
    template <typename F>
    void
    scheduleAt(Tick when, F &&fn)
    {
        push(checkWhen(when), std::forward<F>(fn));
    }

    /** Run events until the queue is empty or @p when is reached.
     *  Time is advanced to @p when even if the queue drains early. */
    void runUntil(Tick when);

    /** Run for @p duration ticks from the current time. */
    void runFor(Tick duration) { runUntil(now_ + duration); }

    /** Number of events executed so far (for microbenchmarks). */
    std::uint64_t eventsFired() const { return fired; }

    /** Queued event count (cancelled firings are reaped lazily and
     *  may be briefly included). */
    std::size_t
    pending() const
    {
        const std::size_t queued =
            wheel_ ? wheel_->count : queue.size();
        return queued + (has_front ? 1 : 0);
    }

    /** Past-dated scheduleAt() occurrences clamped to now(). */
    std::uint64_t pastEvents() const { return past_events; }

    /** @name Batch-expansion accounting (see Engine::Batch). @{ */
    /** Batch firings executed so far (one engine event each). */
    std::uint64_t batchFirings() const { return batch_firings; }
    /** Sub-events expanded inline by batch firings: work that would
     *  have been one engine event each on a per-item schedule. */
    std::uint64_t batchExpanded() const { return batch_expanded; }
    /** Mean expanded sub-events per batch interval. */
    double
    batchExpansionRate() const
    {
        return batch_firings
                   ? double(batch_expanded) / double(batch_firings)
                   : 0.0;
    }
    /** @} */

    /** @name Event-slab introspection (pool regression tests). @{ */
    /** Slots ever allocated (high-water mark of concurrent events). */
    std::size_t slabSlots() const { return slot_count; }
    /** Backing chunks allocated (slot_count / chunk size). */
    std::size_t slabChunks() const { return chunks.size(); }
    /** @} */

    class Recurring;
    class Batch;

    /**
     * @name Snapshot protocol.
     *
     * Callbacks are closures and cannot be serialized, so the engine
     * does not save the queue wholesale. Instead each component
     * re-arms its own Recurring events at their exact saved
     * (tick, seq) keys — exact keys are mandatory because re-arming
     * in a fixed component order could invert the firing order of
     * same-tick events queued in a different order before the save.
     * The engine brackets the component walk with an accounting pass:
     *
     *  - saveBegin() writes the scalar counters and indexes every
     *    *live* queued event by slot (cancelled generations are
     *    dropped — they could never fire anyway). A live event in a
     *    non-recurring slot aborts the snapshot: its closure fires
     *    once and cannot be rebuilt.
     *  - Each Recurring::saveQueued() claims its slot's keys from
     *    the index; saveEnd() fails if any live event was never
     *    claimed, so no component's state can silently fall out of
     *    the snapshot.
     *  - restoreBegin() requires a fresh engine (nothing queued),
     *    restores the scalars — including next_seq, so the key
     *    sequence continues exactly where the saved run left off —
     *    and counts down as Recurring::restoreQueued() re-arms each
     *    saved key; restoreEnd() fails unless every key came back.
     *
     * Any violation throws SnapshotError; callers fall back to a
     * cold run.
     * @{
     */
    void saveBegin(Serializer &s);
    void saveEnd(Serializer &s);
    void restoreBegin(Deserializer &d);
    void restoreEnd(Deserializer &d);
    /** @} */

  private:
    static constexpr std::uint32_t kChunkSlots = 256;

    /** One slab slot: the callback plus pool bookkeeping. */
    struct Slot
    {
        InlineCallback cb;
        Slot *next_free = nullptr;
        std::uint32_t gen = 0;
        bool sticky = false; ///< recurring slot: survives firing
    };

    /** Priority-queue entry: one-compare key + slot reference. */
    struct QueuedEvent
    {
        unsigned __int128 key; ///< (when << 64) | sequence
        Slot *slot;
        std::uint32_t gen;
    };

    struct Later
    {
        bool
        operator()(const QueuedEvent &a, const QueuedEvent &b) const
        {
            return a.key > b.key;
        }
    };

    static Tick whenOf(const QueuedEvent &ev)
    {
        return static_cast<Tick>(ev.key >> 64);
    }

    unsigned __int128
    makeKey(Tick when)
    {
        return (static_cast<unsigned __int128>(when) << 64) |
               next_seq++;
    }

    Slot &
    allocSlot()
    {
        if (free_head == nullptr)
            growSlab();
        Slot &s = *free_head;
        free_head = s.next_free;
        return s;
    }

    void
    freeSlot(Slot &s)
    {
        s.cb.destroy();
        ++s.gen;
        s.sticky = false;
        s.next_free = free_head;
        free_head = &s;
    }

    /**
     * Hierarchical timing wheel: 8 levels of 256 slots, slot index at
     * level l = byte l of the event's tick. An event lives at the
     * level of the highest byte in which its tick differs from the
     * monotonic floor `base` (level 0 if equal), so every level-0
     * slot holds events of exactly one tick and the first occupied
     * level-0 slot at or past byte0(base) holds the global minimum.
     * Popping cascades the first occupied higher-level slot downward
     * when level 0 drains. Events scheduled below the floor after it
     * advanced (a callback running at now < base) collect in `under`;
     * their ticks are strictly below every wheel tick, so they always
     * pop first. Each bucket (slot or under) is itself a small binary
     * min-heap on the key, so same-tick bursts extract in O(log k)
     * and pops come out in exact (tick, seq) order — byte-identical
     * to the big heap.
     */
    struct Wheel
    {
        static constexpr unsigned kLevels = 8;
        static constexpr unsigned kSlots = 256;
        std::vector<QueuedEvent> slots[kLevels][kSlots];
        std::vector<QueuedEvent> under; ///< ticks below the floor
        Tick base = 0;                  ///< monotonic floor
        std::size_t count = 0;          ///< events across slots+under
    };

    void wheelPush(const QueuedEvent &ev);
    bool wheelPop(QueuedEvent &out);

    void growSlab();
    Tick checkWhen(Tick when);

    /** @name Snapshot internals (see the protocol note above). @{ */
    /** Remove and return (sorted) the live keys queued on @p slot. */
    std::vector<unsigned __int128> claimQueuedKeys(const Slot *slot);
    /** Re-enqueue one saved key on @p slot, bypassing makeKey(). */
    void armRestoredKey(unsigned __int128 key, Slot *slot);
    /** @} */

    /**
     * Enqueue keeping the invariant that `front` holds the minimum
     * pending event. Self-rescheduling actors almost always schedule
     * the next-soonest event, so the common case never touches the
     * heap at all (the "front cache" trick from classic DES kernels).
     */
    void
    enqueue(const QueuedEvent &ev)
    {
        if (!has_front) {
            front = ev;
            has_front = true;
        } else if (ev.key < front.key) {
            pushPending(front);
            front = ev;
        } else {
            pushPending(ev);
        }
    }

    /** Spill a non-front event into the selected container. */
    void
    pushPending(const QueuedEvent &ev)
    {
        if (wheel_)
            wheelPush(ev);
        else
            queue.push(ev);
    }

    template <typename F>
    void
    push(Tick when, F &&fn)
    {
        Slot &s = allocSlot();
        s.cb.emplace(std::forward<F>(fn));
        enqueue(QueuedEvent{makeKey(when), &s, s.gen});
    }

    std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later>
        queue;
    std::unique_ptr<Wheel> wheel_; ///< non-null iff Wheel mode
    QueueMode mode_ = QueueMode::Heap;
    QueuedEvent front{};      ///< minimum pending event (cache)
    bool has_front = false;
    // Chunked so slot addresses stay stable while callbacks run
    // (a firing callback may grow the slab by scheduling).
    std::vector<std::unique_ptr<Slot[]>> chunks;
    Slot *free_head = nullptr;
    std::size_t slot_count = 0;

    Tick now_ = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t fired = 0;
    std::uint64_t past_events = 0;
    std::uint64_t batch_firings = 0;
    std::uint64_t batch_expanded = 0;

    // Transient snapshot accounting, live only between
    // saveBegin/saveEnd (resp. restoreBegin/restoreEnd).
    std::unordered_map<const Slot *, std::vector<unsigned __int128>>
        save_index_;
    std::size_t save_unclaimed_ = 0;
    std::uint64_t restore_expected_ = 0;
    bool in_save_ = false;
    bool in_restore_ = false;
};

/**
 * A repeating event: the callback is installed once and re-armed by
 * slot, so steady-state actors (poll loops, batch runners, periodic
 * daemons) never re-create closures on the hot path.
 *
 * The handle owns a pinned slab slot. arm()/armAt() queue the next
 * firing; the callback itself decides whether to re-arm, so stopping
 * an actor is just "don't re-arm" (or cancel() to drop already-queued
 * firings). Arming twice queues two firings. Movable, not copyable;
 * the slot generation guarantees queued firings never outlive the
 * callback, even across cancel()/re-init().
 */
class Engine::Recurring
{
  public:
    Recurring() = default;

    Recurring(Recurring &&o) noexcept : eng_(o.eng_), slot_(o.slot_)
    {
        o.eng_ = nullptr;
        o.slot_ = nullptr;
    }

    Recurring &
    operator=(Recurring &&o) noexcept
    {
        if (this != &o) {
            reset();
            eng_ = std::exchange(o.eng_, nullptr);
            slot_ = std::exchange(o.slot_, nullptr);
        }
        return *this;
    }

    Recurring(const Recurring &) = delete;
    Recurring &operator=(const Recurring &) = delete;

    ~Recurring() { reset(); }

    /** Install @p fn on @p eng (replacing any previous callback). */
    template <typename F>
    void
    init(Engine &eng, F &&fn)
    {
        reset();
        eng_ = &eng;
        slot_ = &eng.allocSlot();
        slot_->cb.emplace(std::forward<F>(fn));
        slot_->sticky = true;
    }

    bool initialized() const { return slot_ != nullptr; }

    /** Queue the next firing @p delay ticks from now. */
    void arm(Tick delay) { armAt(eng_->now_ + delay); }

    /** Queue the next firing at absolute tick @p when. */
    void
    armAt(Tick when)
    {
        eng_->enqueue(QueuedEvent{eng_->makeKey(
                                      eng_->checkWhen(when)),
                                  slot_, slot_->gen});
    }

    /** Invalidate queued firings (the callback stays installed). */
    void
    cancel()
    {
        if (slot_ != nullptr)
            ++slot_->gen;
    }

    /** Drop the callback and release the slot. */
    void
    reset()
    {
        if (slot_ != nullptr) {
            eng_->freeSlot(*slot_);
            eng_ = nullptr;
            slot_ = nullptr;
        }
    }

    /**
     * @name Snapshot hooks.
     * saveQueued() claims this slot's live firings from the engine's
     * save index and writes their exact keys; restoreQueued() re-arms
     * them verbatim on a freshly init()ed slot (the callback itself
     * is re-installed by the owning component's constructor).
     * @{
     */
    void saveQueued(Serializer &s) const;
    void restoreQueued(Deserializer &d);
    /** @} */

  private:
    Engine *eng_ = nullptr;
    Slot *slot_ = nullptr;
};

/**
 * Batch-expansion pump: one repeating engine event per fixed interval
 * whose callback expands into many logical sub-events at once.
 *
 * High-rate actors (the NIC at 100 Gbps generates millions of packet
 * arrivals per simulated second) drown the event queue when every
 * sub-event is its own engine event. A Batch replaces that stream
 * with one firing per interval: the callback receives the covered
 * half-open window (begin, end] and performs every sub-event that
 * falls inside it — with the sub-events' own intra-interval
 * timestamps, so consumers observe the same sequence. The callback
 * returns how many sub-events it expanded; the engine accumulates the
 * firing/expansion counters (batchFirings()/batchExpanded()) so the
 * events-per-interval economy is measurable.
 *
 * Built on Recurring (one pinned slot, no closure churn). Not
 * movable: the installed callback captures `this`.
 */
class Engine::Batch
{
  public:
    Batch() = default;
    Batch(const Batch &) = delete;
    Batch &operator=(const Batch &) = delete;

    /**
     * Install @p fn on @p eng. @p fn is called as
     * `std::uint64_t fn(Tick begin, Tick end)` once per interval and
     * returns the number of sub-events it expanded.
     */
    template <typename F>
    void
    init(Engine &eng, F &&fn)
    {
        stop();
        eng_ = &eng;
        fn_ = std::forward<F>(fn);
        ev_.init(eng, [this] { fire(); });
    }

    /** Begin firing every @p period ticks (first at now + period). */
    void
    start(Tick period)
    {
        if (eng_ == nullptr)
            return;
        if (period == 0)
            period = 1;
        period_ = period;
        last_ = eng_->now();
        active_ = true;
        ev_.arm(period_);
    }

    /** Stop firing and invalidate any queued firing. */
    void
    stop()
    {
        active_ = false;
        if (ev_.initialized())
            ev_.cancel();
    }

    bool active() const { return active_; }
    Tick period() const { return period_; }

    /** @name Snapshot hooks (interval state + the pump's firings). @{ */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);
    /** @} */

  private:
    void
    fire()
    {
        if (!active_)
            return;
        const Tick begin = last_;
        const Tick end = eng_->now();
        last_ = end;
        ++eng_->batch_firings;
        eng_->batch_expanded += fn_(begin, end);
        if (active_)
            ev_.arm(period_);
    }

    Engine *eng_ = nullptr;
    Engine::Recurring ev_;
    std::function<std::uint64_t(Tick, Tick)> fn_;
    Tick period_ = 0;
    Tick last_ = 0;
    bool active_ = false;
};

} // namespace a4

#endif // A4_SIM_ENGINE_HH
