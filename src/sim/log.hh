/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic() flags an internal simulator bug (impossible state); fatal()
 * flags a user/configuration error. Both throw so that unit tests can
 * assert on misuse; top-level binaries let the exception terminate.
 * warn()/inform() print to stderr and never stop the simulation.
 */

#ifndef A4_SIM_LOG_HH
#define A4_SIM_LOG_HH

#include <stdexcept>
#include <string>

namespace a4
{

/** Exception raised by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Exception raised by fatal(): the configuration cannot be run. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** printf-style formatting into a std::string. */
std::string sformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort the simulation. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unusable user configuration and abort the simulation. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a non-fatal suspicious-condition message to stderr. */
void warn(const std::string &msg);

/** Print a status message to stderr. */
void inform(const std::string &msg);

/** Globally silence warn()/inform() (used by benches). */
void setQuiet(bool quiet);

/**
 * Env-knob rejection diagnostic, straight to stderr (never silenced
 * by setQuiet(): a silently ignored knob is worse than a noisy one).
 * Dedups per offending value via caller-owned @p warned state, so a
 * multi-point sweep — and workers forked after the parent validated
 * once, which inherit @p warned — prints one line, not one per
 * parse. One contract for every A4_* knob (window scales, NIC burst).
 * @p format must contain exactly one %s for the offending value.
 */
void warnOncePerValue(std::string &warned, const char *value,
                      const char *format);

} // namespace a4

#endif // A4_SIM_LOG_HH
