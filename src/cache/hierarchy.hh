/**
 * @file
 * The modeled cache hierarchy: private MLCs + sliced non-inclusive LLC
 * with an inclusive directory, DCA ways, and CAT-mask-aware placement.
 *
 * This is the substrate on which every contention in the paper
 * emerges. The load-bearing placement rules (numbered as in DESIGN.md
 * §3) are:
 *
 *  1. Non-inclusive fill: core misses fill the MLC only.
 *  2. Victim cache: MLC evictions allocate into the LLC inside the
 *     evicting core's CLOS mask.
 *  3. LLC-inclusive lines (present in LLC *and* an MLC) may live only
 *     in the inclusive ways, which are coupled one-to-one with the two
 *     directory ways shared between the traditional and extended
 *     directory groups (Yan et al. [65]).
 *  4. Directory migration (C1): a core read of a DMA-written
 *     LLC-exclusive line transitions it to shared LLC-inclusive
 *     (Wang et al. [60]) and therefore *migrates* it into an inclusive
 *     way, evicting the resident line — regardless of any CLOS mask.
 *     Non-I/O LLC hits instead move the line to the MLC and drop the
 *     LLC copy (plain victim-cache behaviour).
 *  5. DCA write-allocate/write-update: allocating DMA writes update a
 *     cached line in place wherever it is, else allocate into the DCA
 *     ways only.
 *  6. DMA leak: an I/O line evicted from the LLC before any core
 *     consumed it is counted against the owning workload.
 *  7. DMA bloat: consumed I/O lines evicted from an MLC re-enter the
 *     LLC through rule 2.
 *  8. Non-allocating DMA writes (DDIO disabled for the port) go to
 *     memory and invalidate stale cached copies.
 *  9. Egress DMA reads are served from the LLC when present; a copy of
 *     MLC-only data is read-allocated into the inclusive ways; misses
 *     read memory without allocating.
 * 10. CAT masks constrain only new allocations.
 *
 * Implementation note: tag+flags are packed into a single 64-bit word
 * per way ([6 flag bits][58 address bits]) so a set lookup touches one
 * or two host cache lines; LRU stamps and ownership live in parallel
 * cold arrays. This keeps the simulator fast enough to run the paper's
 * full evaluation sweeps.
 */

#ifndef A4_CACHE_HIERARCHY_HH
#define A4_CACHE_HIERARCHY_HH

#include <cstdint>
#include <span>
#include <vector>

#include "cache/counters.hh"
#include "cache/geometry.hh"
#include "mem/dram.hh"
#include "rdt/cat.hh"
#include "sim/types.hh"

namespace a4
{

/** deferredTick() value meaning "no deferred access pending". */
inline constexpr Tick kNoDeferredIo = ~Tick(0);

/**
 * A device model whose accesses into the hierarchy are generated
 * lazily instead of one engine event each (the NIC's burst arrival
 * path). The source exposes the timestamp of its earliest
 * not-yet-applied access; the cache drains every attached source up
 * to `now` — in global (timestamp, attach-order) order — before any
 * access or counter sample can observe shared state. This is the
 * observation barrier that makes batched arrival generation
 * tick-for-tick indistinguishable from per-event scheduling: state is
 * only ever *read* with all logically-earlier accesses applied.
 */
class DeferredIoSource
{
  public:
    virtual ~DeferredIoSource() = default;

    /** Timestamp of the earliest pending deferred access, or
     *  kNoDeferredIo when idle. Must be non-decreasing except across
     *  a restart of the source. */
    virtual Tick deferredTick() const = 0;

    /** Apply exactly the earliest pending deferred access.
     *  @pre deferredTick() != kNoDeferredIo. */
    virtual void applyDeferredAccess() = 0;
};

/** Result level of a core access (for tests and latency breakdowns). */
enum class HitLevel { MlcHit, LlcHit, Memory };

/** Outcome of a core access: where it hit and what it cost. */
struct AccessResult
{
    HitLevel level;
    double latency_ns;
};

/** Cache hierarchy model (all cores' MLCs + the shared LLC). */
class CacheSystem
{
  public:
    CacheSystem(const CacheGeometry &geom, const CacheLatencies &lat,
                Dram &dram, CatController &cat);

    /** @name Core-side accesses (attributed to @p wl). @{ */
    AccessResult coreRead(Tick now, CoreId core, Addr addr, WorkloadId wl);
    AccessResult coreWrite(Tick now, CoreId core, Addr addr, WorkloadId wl);
    /** @} */

    /**
     * Device-to-host DMA write of one line.
     *
     * @param owner workload owning the target buffer (attribution).
     * @param consumers cores whose MLCs may hold stale copies (the
     *        buffer's consumer threads); stands in for the extended
     *        directory's snoop filtering.
     * @param allocating DDIO allocating flow (true) vs non-allocating.
     */
    void dmaWriteLine(Tick now, Addr addr, WorkloadId owner,
                      std::span<const CoreId> consumers, bool allocating);

    /**
     * Host-to-device DMA read of one line (egress).
     * @return true if served from the cache hierarchy.
     */
    bool dmaReadLine(Tick now, Addr addr, WorkloadId owner,
                     std::span<const CoreId> cores);

    /**
     * @name Introspection (tests, analysis, occupancy census).
     *
     * These readers (and the counter banks below) are const and
     * therefore bypass the deferred-access barrier: with a batched
     * NIC attached, call drainDeferred(now) first or the state read
     * can be up to one burst interval stale. The access paths and
     * PCM samples drain automatically; raw censuses cannot.
     * @{
     */
    struct Probe
    {
        bool in_llc = false;
        unsigned way = 0;
        bool dirty = false;
        bool io = false;
        bool consumed = false;
        bool in_mlc_flag = false;
        WorkloadId owner = kNoWorkload;
    };

    Probe probeLlc(Addr addr) const;
    bool inMlc(CoreId core, Addr addr) const;

    /**
     * Audit structural invariants; returns the number of violations
     * (0 when healthy). Checked: (a) no duplicate tags within a set,
     * (b) LLC-inclusive lines reside only in inclusive ways, (c) every
     * kInMlc line's registered MLC copy actually exists.
     */
    std::size_t auditInvariants() const;

    /** Valid-line count per LLC way (whole cache). */
    std::vector<std::uint64_t> llcWayOccupancy() const;
    /** Valid-line count per LLC way owned by @p wl. */
    std::vector<std::uint64_t> llcWayOccupancyOf(WorkloadId wl) const;
    /** @} */

    /** @name Deferred device-access sources (burst batching). @{ */
    /** Register @p src; its pending accesses gate every observation. */
    void attachDeferredSource(DeferredIoSource &src);
    /** Unregister @p src (sources detach on destruction). */
    void detachDeferredSource(DeferredIoSource &src);
    /** Lower the fast-path "earliest deferred access" hint to @p t
     *  (sources call this when they (re)start generating). */
    void
    noteDeferredTick(Tick t)
    {
        if (t < next_deferred_)
            next_deferred_ = t;
    }
    /**
     * Apply all deferred accesses with timestamp <= @p now, merged
     * across sources in (timestamp, attach-order) order. Called
     * internally before every access; public for samplers that read
     * counters without touching lines (PCM, occupancy censuses).
     * One compare when nothing is pending.
     */
    void
    drainDeferred(Tick now)
    {
        if (now >= next_deferred_) [[unlikely]]
            drainDeferredSlow(now);
    }
    /** @} */

    /** Per-workload counter bank (auto-grows). */
    WorkloadCounters &wl(WorkloadId id);
    const WorkloadCounters &wlConst(WorkloadId id) const;

    GlobalCacheCounters &global() { return gstats; }
    const GlobalCacheCounters &global() const { return gstats; }

    const CacheGeometry &geometry() const { return geom; }
    const CacheLatencies &latencies() const { return lat; }

    /**
     * @name Snapshot hooks.
     * Tag/LRU/owner arrays go as raw blobs (geometry-checked on
     * restore); counter banks element-wise. Deferred-source
     * registration is construction-time wiring and is not saved —
     * each source snapshots its own pending accesses, and
     * next_deferred_ carries the earliest-pending hint across.
     * @{
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);
    /** @} */

  private:
    enum Flags : std::uint8_t
    {
        kValid = 1,
        kDirty = 2,
        kIo = 4,       ///< holds DMA-written I/O data
        kConsumed = 8, ///< a core has read it since the last DMA write
        kInMlc = 16,   ///< LLC-inclusive: also present in an MLC
    };

    /** Why a line is being evicted from the LLC (stats attribution). */
    enum class EvictCause { Capacity, Migration, DmaAlloc };

    // --- packed tag entries ---------------------------------------------
    static constexpr unsigned kFlagShift = 58;
    static constexpr std::uint64_t kAddrMask =
        (std::uint64_t(1) << kFlagShift) - 1;
    static constexpr std::uint64_t kValidEntryBit =
        std::uint64_t(kValid) << kFlagShift;
    static constexpr std::uint64_t kMatchMask =
        kAddrMask | kValidEntryBit;

    static std::uint64_t
    pack(Addr line, std::uint8_t flags)
    {
        return (line & kAddrMask) |
               (std::uint64_t(flags) << kFlagShift);
    }

    static std::uint8_t flagsOf(std::uint64_t e)
    {
        return static_cast<std::uint8_t>(e >> kFlagShift);
    }

    static Addr lineOfEntry(std::uint64_t e) { return e & kAddrMask; }

    // --- indexing ---------------------------------------------------------
    // Inlined: set hashing + tag scan are the fast path of every
    // simulated access (MLC hits resolve to one hash + one scan).

    static std::uint64_t
    mix(std::uint64_t x)
    {
        // splitmix64 finalizer; stands in for the slice/index hash.
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBull;
        x ^= x >> 31;
        return x;
    }

    unsigned
    llcSetOf(Addr line) const
    {
        return static_cast<unsigned>(
            (static_cast<unsigned __int128>(mix(line)) * geom.llc_sets)
            >> 64);
    }

    unsigned
    mlcSetOf(Addr line) const
    {
        return static_cast<unsigned>(
            (static_cast<unsigned __int128>(
                 mix(line ^ 0xA4A4'5EED'0000'0001ull)) *
             geom.mlc_sets) >> 64);
    }

    /** Way index of @p line in LLC set @p set, or -1. */
    int
    llcFindWay(unsigned set, Addr line) const
    {
        const std::uint64_t *base = &llc_tags[llcIdx(set, 0)];
        const std::uint64_t want = (line & kAddrMask) | kValidEntryBit;
        for (unsigned w = 0; w < geom.llc_ways; ++w) {
            if ((base[w] & kMatchMask) == want)
                return static_cast<int>(w);
        }
        return -1;
    }

    /** Way index of @p line in core's MLC set, or -1. */
    int
    mlcFindWay(CoreId core, unsigned set, Addr line) const
    {
        const std::uint64_t *base = &mlc_tags[mlcIdx(core, set, 0)];
        const std::uint64_t want = (line & kAddrMask) | kValidEntryBit;
        for (unsigned w = 0; w < geom.mlc_ways; ++w) {
            if ((base[w] & kMatchMask) == want)
                return static_cast<int>(w);
        }
        return -1;
    }

    std::size_t llcIdx(unsigned set, unsigned way) const
    {
        return std::size_t(set) * geom.llc_ways + way;
    }

    std::size_t mlcIdx(CoreId core, unsigned set, unsigned way) const
    {
        return (std::size_t(core) * geom.mlc_sets + set) *
                   geom.mlc_ways + way;
    }

    // --- internal operations ----------------------------------------------
    void drainDeferredSlow(Tick now);
    AccessResult coreAccess(Tick now, CoreId core, Addr addr,
                            WorkloadId wl_id, bool is_write);
    void mlcInsert(Tick now, CoreId core, Addr line, WorkloadId owner,
                   bool dirty, bool io);
    void mlcEvictEntry(Tick now, CoreId core, std::uint64_t entry,
                       WorkloadId owner);
    void invalidateMlc(CoreId core, Addr line);

    /**
     * Allocate @p line into the LLC choosing a victim inside @p mask.
     * @return way index used.
     */
    unsigned llcAlloc(Tick now, unsigned set, Addr line, WayMask mask,
                      WorkloadId owner, std::uint8_t flags,
                      EvictCause cause);
    void llcEvictSlot(Tick now, unsigned set, unsigned way,
                      EvictCause cause);
    void touchLlc(unsigned set, unsigned way);
    void stampInsertLlc(unsigned set, unsigned way);

    CacheGeometry geom;
    CacheLatencies lat;
    Dram &dram;
    CatController &cat;

    WayMask dca_mask;
    WayMask inclusive_mask;

    // LLC state: hot packed tags, cold metadata.
    std::vector<std::uint64_t> llc_tags;
    std::vector<std::uint32_t> llc_lru;
    std::vector<std::uint16_t> llc_owner;
    std::vector<std::uint16_t> llc_mlc_core;
    std::vector<std::uint32_t> llc_tick;

    // MLC state, flattened across cores.
    std::vector<std::uint64_t> mlc_tags;
    std::vector<std::uint32_t> mlc_lru;
    std::vector<std::uint16_t> mlc_owner;
    std::vector<std::uint32_t> mlc_tick;

    mutable std::vector<WorkloadCounters> wl_stats;
    GlobalCacheCounters gstats;

    // Deferred-access sources and the cached earliest-pending hint.
    std::vector<DeferredIoSource *> deferred_;
    Tick next_deferred_ = kNoDeferredIo;
    bool draining_ = false; ///< re-entrancy guard (drains access us)
};

} // namespace a4

#endif // A4_CACHE_HIERARCHY_HH
