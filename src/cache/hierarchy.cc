#include "cache/hierarchy.hh"

#include <algorithm>

#include "sim/log.hh"

namespace a4
{

CacheSystem::CacheSystem(const CacheGeometry &g, const CacheLatencies &l,
                         Dram &dram_, CatController &cat_)
    : geom(g), lat(l), dram(dram_), cat(cat_)
{
    if (geom.dca_ways + geom.inclusive_ways > geom.llc_ways)
        fatal("CacheSystem: DCA + inclusive ways exceed associativity");
    if (cat.numWays() != geom.llc_ways)
        fatal("CacheSystem: CAT way count disagrees with geometry");

    dca_mask = CatController::makeMask(0, geom.dca_ways - 1);
    inclusive_mask = CatController::makeMask(geom.firstInclusiveWay(),
                                             geom.llc_ways - 1);

    const std::size_t llc_n = std::size_t(geom.llc_sets) * geom.llc_ways;
    llc_tags.assign(llc_n, 0);
    llc_lru.assign(llc_n, 0);
    llc_owner.assign(llc_n, 0);
    llc_mlc_core.assign(llc_n, 0);
    llc_tick.assign(geom.llc_sets, 0);

    const std::size_t mlc_n =
        std::size_t(geom.num_cores) * geom.mlc_sets * geom.mlc_ways;
    mlc_tags.assign(mlc_n, 0);
    mlc_lru.assign(mlc_n, 0);
    mlc_owner.assign(mlc_n, 0);
    mlc_tick.assign(std::size_t(geom.num_cores) * geom.mlc_sets, 0);

    wl_stats.resize(16);
}

void
CacheSystem::touchLlc(unsigned set, unsigned way)
{
    // LRU: bump the per-set clock. SRRIP: promote to near-immediate
    // re-reference (RRPV 0).
    llc_lru[llcIdx(set, way)] =
        geom.replacement == LlcReplacement::Lru ? ++llc_tick[set] : 0;
}

void
CacheSystem::stampInsertLlc(unsigned set, unsigned way)
{
    // SRRIP inserts at a long re-reference interval (RRPV 2), which
    // is what lets one-shot (bloated) lines age out before reused
    // ones; LRU inserts at MRU.
    llc_lru[llcIdx(set, way)] =
        geom.replacement == LlcReplacement::Lru ? ++llc_tick[set] : 2;
}

// --- deferred device accesses -----------------------------------------------

void
CacheSystem::attachDeferredSource(DeferredIoSource &src)
{
    deferred_.push_back(&src);
    noteDeferredTick(src.deferredTick());
}

void
CacheSystem::detachDeferredSource(DeferredIoSource &src)
{
    std::erase(deferred_, &src);
    // The cached hint may now be stale-low; the next drain resets it.
}

void
CacheSystem::drainDeferredSlow(Tick now)
{
    // Applying a deferred access re-enters through dmaWriteLine (and
    // may trigger DRAM/eviction traffic); the guard makes those inner
    // drainDeferred() calls no-ops so application order stays the
    // single merge below.
    if (draining_)
        return;
    draining_ = true;
    for (;;) {
        // Merge across sources: earliest timestamp wins, attach order
        // breaks ties, so the applied stream is identical no matter
        // which observation (or which source's carrier event)
        // triggered the drain.
        DeferredIoSource *best = nullptr;
        Tick best_tick = kNoDeferredIo;
        for (DeferredIoSource *s : deferred_) {
            const Tick t = s->deferredTick();
            if (t <= now && t < best_tick) {
                best = s;
                best_tick = t;
            }
        }
        if (best == nullptr)
            break;
        best->applyDeferredAccess();
    }
    next_deferred_ = kNoDeferredIo;
    for (DeferredIoSource *s : deferred_)
        next_deferred_ = std::min(next_deferred_, s->deferredTick());
    draining_ = false;
}

// --- counters ----------------------------------------------------------------

WorkloadCounters &
CacheSystem::wl(WorkloadId id)
{
    if (id >= wl_stats.size())
        wl_stats.resize(std::size_t(id) + 1);
    return wl_stats[id];
}

const WorkloadCounters &
CacheSystem::wlConst(WorkloadId id) const
{
    if (id >= wl_stats.size())
        wl_stats.resize(std::size_t(id) + 1);
    return wl_stats[id];
}

// --- core-side path -----------------------------------------------------------

AccessResult
CacheSystem::coreRead(Tick now, CoreId core, Addr addr, WorkloadId wl_id)
{
    return coreAccess(now, core, addr, wl_id, false);
}

AccessResult
CacheSystem::coreWrite(Tick now, CoreId core, Addr addr, WorkloadId wl_id)
{
    return coreAccess(now, core, addr, wl_id, true);
}

AccessResult
CacheSystem::coreAccess(Tick now, CoreId core, Addr addr, WorkloadId wl_id,
                        bool is_write)
{
    drainDeferred(now);
    if (core >= geom.num_cores)
        panic(sformat("core %u out of range", core));

    const Addr line = lineOf(addr);
    WorkloadCounters &w = wl(wl_id);

    // MLC lookup.
    const unsigned mset = mlcSetOf(line);
    if (int mw = mlcFindWay(core, mset, line); mw >= 0) {
        const std::size_t mi = mlcIdx(core, mset, unsigned(mw));
        mlc_lru[mi] =
            ++mlc_tick[std::size_t(core) * geom.mlc_sets + mset];
        if (is_write)
            mlc_tags[mi] |= std::uint64_t(kDirty) << kFlagShift;
        w.mlc_hit.inc();
        return {HitLevel::MlcHit, lat.mlc_hit_ns};
    }
    w.mlc_miss.inc();

    // LLC lookup.
    const unsigned set = llcSetOf(line);
    gstats.llc_lookups.inc();
    if (int lw = llcFindWay(set, line); lw >= 0) {
        unsigned way = unsigned(lw);
        std::size_t li = llcIdx(set, way);
        w.llc_hit.inc();
        touchLlc(set, way);

        std::uint8_t fl = flagsOf(llc_tags[li]);
        const WorkloadId owner = llc_owner[li];

        if (fl & kIo) {
            // Rule 4: consumption of a DMA-written line transitions it
            // to shared LLC-inclusive, restricted to inclusive ways.
            fl |= kConsumed;
            if (way < geom.firstInclusiveWay()) {
                // Migrate: vacate this slot, re-allocate inside the
                // inclusive ways (CLOS-independent).
                llc_tags[li] = 0;
                way = llcAlloc(now, set, line, inclusive_mask, owner,
                               fl, EvictCause::Migration);
                li = llcIdx(set, way);
                wl(owner).migrated_inclusive.inc();
            }
            llc_tags[li] = pack(line, fl | kInMlc);
            llc_mlc_core[li] = core;
            mlcInsert(now, core, line, owner, is_write, true);
        } else {
            // Plain victim-cache hit: move to the MLC, drop the LLC
            // copy (non-inclusive exclusivity for non-I/O data).
            const bool dirty = fl & kDirty;
            llc_tags[li] = 0;
            mlcInsert(now, core, line, owner, dirty || is_write, false);
        }
        return {HitLevel::LlcHit, lat.llc_hit_ns};
    }

    // Rule 1: miss fills the MLC only.
    w.llc_miss.inc();
    w.mem_read_lines.inc();
    double mem_ns = dram.readLine(now);
    mlcInsert(now, core, line, wl_id, is_write, false);
    return {HitLevel::Memory, mem_ns};
}

void
CacheSystem::mlcInsert(Tick now, CoreId core, Addr line, WorkloadId owner,
                       bool dirty, bool io)
{
    const unsigned set = mlcSetOf(line);
    const std::size_t base = mlcIdx(core, set, 0);
    std::uint32_t &tick = mlc_tick[std::size_t(core) * geom.mlc_sets + set];

    // Refresh in place if already present (defensive; callers normally
    // only insert on a confirmed MLC miss).
    if (int mw = mlcFindWay(core, set, line); mw >= 0) {
        const std::size_t mi = base + unsigned(mw);
        std::uint8_t fl = flagsOf(mlc_tags[mi]);
        fl |= kValid | (dirty ? kDirty : 0) | (io ? kIo : 0);
        mlc_tags[mi] = pack(line, fl);
        mlc_lru[mi] = ++tick;
        return;
    }

    // Pick an invalid way, else the LRU victim.
    unsigned victim = 0;
    bool found_invalid = false;
    std::uint32_t best = 0;
    for (unsigned w2 = 0; w2 < geom.mlc_ways; ++w2) {
        if (!(mlc_tags[base + w2] & kValidEntryBit)) {
            victim = w2;
            found_invalid = true;
            break;
        }
        if (w2 == 0 || mlc_lru[base + w2] < best) {
            best = mlc_lru[base + w2];
            victim = w2;
        }
    }
    const std::size_t vi = base + victim;
    if (!found_invalid && (mlc_tags[vi] & kValidEntryBit))
        mlcEvictEntry(now, core, mlc_tags[vi], mlc_owner[vi]);

    mlc_tags[vi] = pack(line, std::uint8_t(kValid | (dirty ? kDirty : 0) |
                                           (io ? kIo : 0)));
    mlc_owner[vi] = owner;
    mlc_lru[vi] = ++tick;
}

void
CacheSystem::mlcEvictEntry(Tick now, CoreId core, std::uint64_t entry,
                           WorkloadId owner)
{
    const Addr line = lineOfEntry(entry);
    const std::uint8_t fl = flagsOf(entry);
    const bool dirty = fl & kDirty;
    const bool io = fl & kIo;

    // If the LLC still holds the line (LLC-inclusive), the eviction
    // just downgrades it to LLC-exclusive — no new allocation.
    const unsigned set = llcSetOf(line);
    if (int lw = llcFindWay(set, line); lw >= 0) {
        const std::size_t li = llcIdx(set, unsigned(lw));
        std::uint8_t lf = flagsOf(llc_tags[li]);
        lf &= static_cast<std::uint8_t>(~kInMlc);
        if (dirty)
            lf |= kDirty;
        llc_tags[li] = pack(line, lf);
        return;
    }

    // Rule 2 (+7): allocate into the LLC inside the core's CLOS mask.
    std::uint8_t nf = std::uint8_t(kValid | (dirty ? kDirty : 0) |
                                   (io ? (kIo | kConsumed) : 0));
    llcAlloc(now, set, line, cat.maskForCore(core), owner, nf,
             EvictCause::Capacity);
    if (io)
        wl(owner).bloat_inserts.inc();
}

void
CacheSystem::invalidateMlc(CoreId core, Addr line)
{
    const unsigned set = mlcSetOf(line);
    if (int mw = mlcFindWay(core, set, line); mw >= 0)
        mlc_tags[mlcIdx(core, set, unsigned(mw))] = 0;
}

// --- LLC allocation / eviction --------------------------------------------------

unsigned
CacheSystem::llcAlloc(Tick now, unsigned set, Addr line, WayMask mask,
                      WorkloadId owner, std::uint8_t flags,
                      EvictCause cause)
{
    if (mask == 0)
        panic("llcAlloc: empty way mask");

    const std::size_t base = llcIdx(set, 0);
    int victim = -1;

    if (geom.replacement == LlcReplacement::Lru) {
        std::uint32_t best = 0;
        for (unsigned w2 = 0; w2 < geom.llc_ways; ++w2) {
            if (!(mask & (1u << w2)))
                continue;
            if (!(llc_tags[base + w2] & kValidEntryBit)) {
                victim = static_cast<int>(w2);
                break;
            }
            if (victim < 0 || llc_lru[base + w2] < best) {
                best = llc_lru[base + w2];
                victim = static_cast<int>(w2);
            }
        }
    } else {
        // SRRIP: evict the first way at the distant RRPV (3); if
        // none, age every candidate and retry (converges in <= 4
        // rounds with 2-bit RRPVs).
        for (int round = 0; round < 4 && victim < 0; ++round) {
            for (unsigned w2 = 0; w2 < geom.llc_ways; ++w2) {
                if (!(mask & (1u << w2)))
                    continue;
                if (!(llc_tags[base + w2] & kValidEntryBit) ||
                    llc_lru[base + w2] >= 3) {
                    victim = static_cast<int>(w2);
                    break;
                }
            }
            if (victim < 0) {
                for (unsigned w2 = 0; w2 < geom.llc_ways; ++w2) {
                    if ((mask & (1u << w2)) && llc_lru[base + w2] < 3)
                        ++llc_lru[base + w2];
                }
            }
        }
    }
    if (victim < 0)
        panic("llcAlloc: mask selected no ways");

    const auto w2 = static_cast<unsigned>(victim);
    if (llc_tags[base + w2] & kValidEntryBit)
        llcEvictSlot(now, set, w2, cause);

    llc_tags[base + w2] = pack(line, flags | kValid);
    llc_owner[base + w2] = owner;
    llc_mlc_core[base + w2] = 0;
    stampInsertLlc(set, w2);
    return w2;
}

void
CacheSystem::llcEvictSlot(Tick now, unsigned set, unsigned way,
                          EvictCause cause)
{
    const std::size_t li = llcIdx(set, way);
    const std::uint8_t fl = flagsOf(llc_tags[li]);
    WorkloadCounters &ow = wl(llc_owner[li]);

    gstats.llc_evictions.inc();
    if (way < geom.dca_ways)
        gstats.dca_evictions.inc();
    if (way >= geom.firstInclusiveWay())
        gstats.inclusive_evictions.inc();

    if (fl & kDirty) {
        gstats.llc_writebacks.inc();
        ow.mem_write_lines.inc();
        dram.writeLine(now);
    }
    // Rule 6: unconsumed I/O line pushed out = DMA leak.
    if ((fl & kIo) && !(fl & kConsumed))
        ow.dma_leaked.inc();
    if (cause == EvictCause::Migration)
        ow.evicted_by_migration.inc();

    // If an MLC still holds the line it silently becomes MLC-only;
    // the extended directory keeps tracking it (nothing to do here).
    llc_tags[li] = 0;
}

// --- device-side paths -------------------------------------------------------------

void
CacheSystem::dmaWriteLine(Tick now, Addr addr, WorkloadId owner,
                          std::span<const CoreId> consumers,
                          bool allocating)
{
    drainDeferred(now);
    const Addr line = lineOf(addr);
    WorkloadCounters &w = wl(owner);
    const unsigned set = llcSetOf(line);

    if (allocating) {
        w.dma_lines_written.inc();
        if (int lw = llcFindWay(set, line); lw >= 0) {
            // Rule 5: write-update in place, wherever the line lives.
            const std::size_t li = llcIdx(set, unsigned(lw));
            std::uint8_t fl = flagsOf(llc_tags[li]);
            if (fl & kInMlc) {
                invalidateMlc(llc_mlc_core[li], line);
                fl &= static_cast<std::uint8_t>(~kInMlc);
            }
            fl |= kDirty | kIo;
            fl &= static_cast<std::uint8_t>(~kConsumed);
            llc_tags[li] = pack(line, fl);
            llc_owner[li] = owner;
            touchLlc(set, unsigned(lw));
            w.dma_write_update.inc();
        } else {
            // Stale copies may linger in consumer MLCs (the line was
            // consumed through the memory path after a leak).
            for (CoreId c : consumers)
                invalidateMlc(c, line);
            llcAlloc(now, set, line, dca_mask, owner,
                     kValid | kDirty | kIo, EvictCause::DmaAlloc);
            w.dma_write_alloc.inc();
        }
    } else {
        // Rule 8: non-allocating write — memory traffic + invalidation.
        w.dma_nonalloc.inc();
        w.mem_write_lines.inc();
        dram.writeLine(now);
        if (int lw = llcFindWay(set, line); lw >= 0) {
            const std::size_t li = llcIdx(set, unsigned(lw));
            if (flagsOf(llc_tags[li]) & kInMlc)
                invalidateMlc(llc_mlc_core[li], line);
            llc_tags[li] = 0;
        } else {
            for (CoreId c : consumers)
                invalidateMlc(c, line);
        }
    }
}

bool
CacheSystem::dmaReadLine(Tick now, Addr addr, WorkloadId owner,
                         std::span<const CoreId> cores)
{
    drainDeferred(now);
    const Addr line = lineOf(addr);
    const unsigned set = llcSetOf(line);

    if (int lw = llcFindWay(set, line); lw >= 0) {
        touchLlc(set, unsigned(lw));
        return true;
    }

    // MLC-only data: egress read-allocates a copy in the inclusive
    // ways (rule 9), making the line LLC-inclusive.
    for (CoreId c : cores) {
        const unsigned mset = mlcSetOf(line);
        if (int mw = mlcFindWay(c, mset, line); mw >= 0) {
            const WorkloadId ml_owner =
                mlc_owner[mlcIdx(c, mset, unsigned(mw))];
            unsigned nw = llcAlloc(now, set, line, inclusive_mask,
                                   ml_owner, kValid,
                                   EvictCause::Capacity);
            const std::size_t li = llcIdx(set, nw);
            llc_tags[li] |= std::uint64_t(kInMlc) << kFlagShift;
            llc_mlc_core[li] = c;
            gstats.egress_inclusive_alloc.inc();
            return true;
        }
    }

    wl(owner).mem_read_lines.inc();
    dram.readLine(now);
    return false;
}

// --- introspection ----------------------------------------------------------------

CacheSystem::Probe
CacheSystem::probeLlc(Addr addr) const
{
    const Addr line = lineOf(addr);
    const unsigned set = llcSetOf(line);
    Probe p;
    if (int lw = llcFindWay(set, line); lw >= 0) {
        const std::size_t li = llcIdx(set, unsigned(lw));
        const std::uint8_t fl = flagsOf(llc_tags[li]);
        p.in_llc = true;
        p.way = unsigned(lw);
        p.dirty = fl & kDirty;
        p.io = fl & kIo;
        p.consumed = fl & kConsumed;
        p.in_mlc_flag = fl & kInMlc;
        p.owner = llc_owner[li];
    }
    return p;
}

bool
CacheSystem::inMlc(CoreId core, Addr addr) const
{
    const Addr line = lineOf(addr);
    return mlcFindWay(core, mlcSetOf(line), line) >= 0;
}

std::size_t
CacheSystem::auditInvariants() const
{
    std::size_t violations = 0;
    for (unsigned s = 0; s < geom.llc_sets; ++s) {
        const std::size_t base = llcIdx(s, 0);
        for (unsigned w2 = 0; w2 < geom.llc_ways; ++w2) {
            const std::uint64_t e = llc_tags[base + w2];
            if (!(e & kValidEntryBit))
                continue;
            // (a) tag unique within the set.
            for (unsigned v = w2 + 1; v < geom.llc_ways; ++v) {
                if ((llc_tags[base + v] & kValidEntryBit) &&
                    lineOfEntry(llc_tags[base + v]) == lineOfEntry(e))
                    ++violations;
            }
            if (flagsOf(e) & kInMlc) {
                // (b) inclusive lines only in inclusive ways.
                if (w2 < geom.firstInclusiveWay())
                    ++violations;
                // (c) the registered MLC copy exists.
                CoreId c = llc_mlc_core[base + w2];
                if (c >= geom.num_cores ||
                    mlcFindWay(c, mlcSetOf(lineOfEntry(e)),
                               lineOfEntry(e)) < 0)
                    ++violations;
            }
        }
    }
    return violations;
}

std::vector<std::uint64_t>
CacheSystem::llcWayOccupancy() const
{
    std::vector<std::uint64_t> occ(geom.llc_ways, 0);
    for (unsigned s = 0; s < geom.llc_sets; ++s) {
        for (unsigned w2 = 0; w2 < geom.llc_ways; ++w2) {
            if (llc_tags[llcIdx(s, w2)] & kValidEntryBit)
                ++occ[w2];
        }
    }
    return occ;
}

std::vector<std::uint64_t>
CacheSystem::llcWayOccupancyOf(WorkloadId id) const
{
    std::vector<std::uint64_t> occ(geom.llc_ways, 0);
    for (unsigned s = 0; s < geom.llc_sets; ++s) {
        for (unsigned w2 = 0; w2 < geom.llc_ways; ++w2) {
            const std::size_t i = llcIdx(s, w2);
            if ((llc_tags[i] & kValidEntryBit) && llc_owner[i] == id)
                ++occ[w2];
        }
    }
    return occ;
}

// --------------------------------------------------------------------
// Snapshot hooks

namespace
{

void
saveCounters(Serializer &s, const WorkloadCounters &c)
{
    c.mlc_hit.saveState(s);
    c.mlc_miss.saveState(s);
    c.llc_hit.saveState(s);
    c.llc_miss.saveState(s);
    c.dma_lines_written.saveState(s);
    c.dma_write_update.saveState(s);
    c.dma_write_alloc.saveState(s);
    c.dma_nonalloc.saveState(s);
    c.dma_leaked.saveState(s);
    c.migrated_inclusive.saveState(s);
    c.bloat_inserts.saveState(s);
    c.evicted_by_migration.saveState(s);
    c.mem_read_lines.saveState(s);
    c.mem_write_lines.saveState(s);
}

void
restoreCounters(Deserializer &d, WorkloadCounters &c)
{
    c.mlc_hit.restoreState(d);
    c.mlc_miss.restoreState(d);
    c.llc_hit.restoreState(d);
    c.llc_miss.restoreState(d);
    c.dma_lines_written.restoreState(d);
    c.dma_write_update.restoreState(d);
    c.dma_write_alloc.restoreState(d);
    c.dma_nonalloc.restoreState(d);
    c.dma_leaked.restoreState(d);
    c.migrated_inclusive.restoreState(d);
    c.bloat_inserts.restoreState(d);
    c.evicted_by_migration.restoreState(d);
    c.mem_read_lines.restoreState(d);
    c.mem_write_lines.restoreState(d);
}

} // namespace

void
CacheSystem::saveState(Serializer &s) const
{
    s.begin("cache");
    s.podVec(llc_tags);
    s.podVec(llc_lru);
    s.podVec(llc_owner);
    s.podVec(llc_mlc_core);
    s.podVec(llc_tick);
    s.podVec(mlc_tags);
    s.podVec(mlc_lru);
    s.podVec(mlc_owner);
    s.podVec(mlc_tick);
    s.u64(wl_stats.size());
    for (const WorkloadCounters &c : wl_stats)
        saveCounters(s, c);
    gstats.llc_lookups.saveState(s);
    gstats.llc_evictions.saveState(s);
    gstats.llc_writebacks.saveState(s);
    gstats.dca_evictions.saveState(s);
    gstats.inclusive_evictions.saveState(s);
    gstats.egress_inclusive_alloc.saveState(s);
    s.u64(next_deferred_);
    s.end("cache");
}

void
CacheSystem::restoreState(Deserializer &d)
{
    d.begin("cache");
    const std::size_t llc_n = llc_tags.size();
    const std::size_t llc_sets_n = llc_tick.size();
    const std::size_t mlc_n = mlc_tags.size();
    const std::size_t mlc_sets_n = mlc_tick.size();
    d.podVec(llc_tags);
    d.podVec(llc_lru);
    d.podVec(llc_owner);
    d.podVec(llc_mlc_core);
    d.podVec(llc_tick);
    d.podVec(mlc_tags);
    d.podVec(mlc_lru);
    d.podVec(mlc_owner);
    d.podVec(mlc_tick);
    if (llc_tags.size() != llc_n || llc_lru.size() != llc_n ||
        llc_owner.size() != llc_n || llc_mlc_core.size() != llc_n ||
        llc_tick.size() != llc_sets_n || mlc_tags.size() != mlc_n ||
        mlc_lru.size() != mlc_n || mlc_owner.size() != mlc_n ||
        mlc_tick.size() != mlc_sets_n)
        throw SnapshotError("CacheSystem: geometry mismatch");
    wl_stats.resize(d.u64());
    for (WorkloadCounters &c : wl_stats)
        restoreCounters(d, c);
    gstats.llc_lookups.restoreState(d);
    gstats.llc_evictions.restoreState(d);
    gstats.llc_writebacks.restoreState(d);
    gstats.dca_evictions.restoreState(d);
    gstats.inclusive_evictions.restoreState(d);
    gstats.egress_inclusive_alloc.restoreState(d);
    next_deferred_ = d.u64();
    d.end("cache");
}

} // namespace a4
