/**
 * @file
 * Cache-hierarchy geometry and latency parameters.
 */

#ifndef A4_CACHE_GEOMETRY_HH
#define A4_CACHE_GEOMETRY_HH

#include "sim/log.hh"
#include "sim/types.hh"

namespace a4
{

/**
 * LLC replacement policy.
 *
 * LRU matches the evaluated Skylake parts. SRRIP (2-bit re-reference
 * interval prediction, Jaleel et al. [29]) is provided for the
 * related-work ablation: the paper argues that replacement-policy
 * fixes can ease DMA bloat but cannot address the directory
 * contention, whose migrations are placement-forced regardless of
 * policy — `bench/ablation_replacement` demonstrates exactly that.
 */
enum class LlcReplacement { Lru, Srrip };

/**
 * Geometry of the modeled hierarchy.
 *
 * Defaults reproduce the evaluation CPU (Intel Xeon Gold 6140,
 * Skylake-SP): 18 cores, 1 MiB 16-way private MLC each, 24.75 MiB
 * 11-way non-inclusive LLC (18 slices x 2048 sets folded into one
 * logical array), DCA ways {0,1}, inclusive ways {9,10}.
 *
 * `scale` divides capacities (set counts) to trade fidelity for
 * simulation speed; experiments that scale their working sets by the
 * same factor preserve every capacity ratio in the paper.
 */
struct CacheGeometry
{
    unsigned num_cores = 18;

    unsigned llc_ways = 11;
    unsigned llc_sets = 18 * 2048;
    unsigned mlc_ways = 16;
    unsigned mlc_sets = 1024;

    unsigned dca_ways = 2;       ///< ways [0, dca_ways)
    unsigned inclusive_ways = 2; ///< ways [llc_ways - inclusive_ways, ...)

    LlcReplacement replacement = LlcReplacement::Lru;

    /** Divide set counts by @p s (capacity scaling). */
    CacheGeometry
    scaled(unsigned s) const
    {
        if (s == 0)
            fatal("CacheGeometry: scale must be >= 1");
        CacheGeometry g = *this;
        g.llc_sets = llc_sets / s;
        g.mlc_sets = mlc_sets / s;
        if (g.llc_sets == 0 || g.mlc_sets == 0)
            fatal("CacheGeometry: scale too large");
        return g;
    }

    std::uint64_t
    llcBytes() const
    {
        return std::uint64_t(llc_ways) * llc_sets * kLineBytes;
    }

    std::uint64_t
    mlcBytes() const
    {
        return std::uint64_t(mlc_ways) * mlc_sets * kLineBytes;
    }

    unsigned firstInclusiveWay() const { return llc_ways - inclusive_ways; }
};

/** Core-visible access latencies (ns); memory latency comes from Dram. */
struct CacheLatencies
{
    double mlc_hit_ns = 5.0;
    double llc_hit_ns = 20.0;
};

} // namespace a4

#endif // A4_CACHE_GEOMETRY_HH
