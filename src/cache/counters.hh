/**
 * @file
 * Performance-counter banks exposed by the cache hierarchy.
 *
 * Counters are monotonic; the PCM facade snapshots them per interval.
 * Per-workload banks model the core-scoped events (every access is
 * attributed to the workload running on the issuing core) plus the
 * IIO/DDIO events attributed to the workload owning the I/O buffer.
 */

#ifndef A4_CACHE_COUNTERS_HH
#define A4_CACHE_COUNTERS_HH

#include "sim/stats.hh"

namespace a4
{

/** Per-workload cache/DMA event counters. */
struct WorkloadCounters
{
    // Core-side events.
    SnapshotCounter mlc_hit;
    SnapshotCounter mlc_miss;
    SnapshotCounter llc_hit;  ///< of MLC misses, hit in LLC
    SnapshotCounter llc_miss; ///< of MLC misses, missed to memory

    // DDIO events for DMA targeting this workload's buffers.
    SnapshotCounter dma_lines_written; ///< all allocating-path DMA writes
    SnapshotCounter dma_write_update;  ///< hit an existing LLC line
    SnapshotCounter dma_write_alloc;   ///< allocated into a DCA way
    SnapshotCounter dma_nonalloc;      ///< non-allocating (DDIO off) writes
    SnapshotCounter dma_leaked;        ///< evicted from LLC unconsumed

    // Placement traffic.
    SnapshotCounter migrated_inclusive; ///< DCA->inclusive migrations (C1)
    SnapshotCounter bloat_inserts;      ///< consumed I/O lines re-entering LLC
    SnapshotCounter evicted_by_migration; ///< this workload's lines evicted
                                          ///< from inclusive ways by others

    // Memory traffic attributed to this workload's accesses.
    SnapshotCounter mem_read_lines;
    SnapshotCounter mem_write_lines;
};

/** System-wide cache event counters. */
struct GlobalCacheCounters
{
    SnapshotCounter llc_lookups;
    SnapshotCounter llc_evictions;
    SnapshotCounter llc_writebacks;
    SnapshotCounter dca_evictions;       ///< evictions out of DCA ways
    SnapshotCounter inclusive_evictions; ///< evictions out of ways 9-10
    SnapshotCounter egress_inclusive_alloc; ///< egress read-allocates
};

} // namespace a4

#endif // A4_CACHE_COUNTERS_HH
